// Decomposition cost models (slab / 2.5D hybrid) and the 2026 GPU
// fat-tree machine. These check the model's *shapes* — validity limits,
// which exchange each layout pays for, where the crossovers sit — not
// absolute seconds.
#include <gtest/gtest.h>

#include "netsim/machine.hpp"
#include "netsim/predictor.hpp"

namespace {

using pcf::netsim::decomp_kind;
using pcf::netsim::decomp_times;
using pcf::netsim::job_config;
using pcf::netsim::machine;
using pcf::netsim::predictor;
using pcf::netsim::topology;

// A 2026-scale production grid (the paper's largest case is 18432 x 1536
// x 12288; this is the next doubling generation).
job_config gpu_job(long gpus) {
  job_config j;
  j.nx = 36864;
  j.ny = 4096;
  j.nz = 24576;
  j.cores = gpus;  // one "core" = one GPU
  return j;
}

TEST(GpuMachine, HasIslandAndContentionParameters) {
  const machine m = machine::gpu_fattree_2026();
  EXPECT_EQ(m.topo, topology::fat_tree);
  EXPECT_EQ(m.cores_per_node, 4);
  EXPECT_EQ(m.island_size, 72);
  EXPECT_GT(m.island_bw, 0.0);
  EXPECT_GT(m.link_cont_amp, 0.0);
  // Big enough for the 10^6-rank crossover study.
  EXPECT_GE(m.total_nodes * m.cores_per_node, 1000000L);
}

TEST(GpuMachine, PaperMachinesHaveNoIslandsOrLinkContention) {
  for (const machine& m : {machine::mira(), machine::lonestar(),
                           machine::stampede(), machine::blue_waters()}) {
    EXPECT_EQ(m.island_size, 1) << m.name;
    EXPECT_DOUBLE_EQ(m.link_contention(4096.0), 1.0) << m.name;
  }
}

TEST(GpuMachine, LinkContentionGrowsWithConcurrentGroups) {
  const machine m = machine::gpu_fattree_2026();
  EXPECT_NEAR(m.link_contention(1.0), 1.0, 1e-6);
  EXPECT_LT(m.link_contention(64.0), m.link_contention(1024.0));
  EXPECT_LE(m.link_contention(1e9), 1.0 + m.link_cont_amp + 1e-9);
}

TEST(DecompModel, PencilMatchesBaselineSections) {
  // The pencil path must reproduce the calibrated timestep model's
  // non-comm sections exactly (the Table 9/10 reproduction depends on
  // that model staying untouched).
  const predictor p(machine::mira());
  job_config j;
  j.nx = 18432;
  j.ny = 1536;
  j.nz = 12288;
  j.cores = 131072;
  const auto base = p.timestep(j);
  const auto d = p.timestep_decomp(j, decomp_kind::pencil2d);
  ASSERT_TRUE(d.valid);
  EXPECT_DOUBLE_EQ(d.t.reorder, base.reorder);
  EXPECT_DOUBLE_EQ(d.t.fft, base.fft);
  EXPECT_DOUBLE_EQ(d.t.advance, base.advance);
}

TEST(DecompModel, SlabValidOnlyWhileRanksFitTheRows) {
  const predictor p(machine::gpu_fattree_2026());
  // min(ny, nz) = 4096 on this grid.
  EXPECT_TRUE(p.timestep_decomp(gpu_job(4096), decomp_kind::slab).valid);
  EXPECT_FALSE(p.timestep_decomp(gpu_job(8192), decomp_kind::slab).valid);
}

TEST(DecompModel, SlabPaysOnlyTheYzExchange) {
  // At a small rank count the slab's single global exchange beats the
  // pencil's two (comm only; the other sections are identical).
  const predictor p(machine::gpu_fattree_2026());
  const job_config j = gpu_job(512);
  const auto slab = p.timestep_decomp(j, decomp_kind::slab);
  const auto pencil = p.timestep_decomp(j, decomp_kind::pencil2d);
  ASSERT_TRUE(slab.valid);
  EXPECT_EQ(slab.pa, 1);
  EXPECT_EQ(slab.pb, 512);
  EXPECT_LT(slab.t.comm, pencil.t.comm);
}

TEST(DecompModel, HybridExtendsPastTheSlabLimit) {
  const predictor p(machine::gpu_fattree_2026());
  const job_config j = gpu_job(65536);  // far past min(ny, nz) = 4096
  EXPECT_FALSE(p.timestep_decomp(j, decomp_kind::slab).valid);
  const auto h = p.timestep_decomp(j, decomp_kind::hybrid_25d);
  ASSERT_TRUE(h.valid);
  EXPECT_GE(h.pa, 2);
  EXPECT_EQ(h.pa * h.pb, 65536);
  EXPECT_LE(h.pb, 4096);  // every replica's slab still fits the rows
}

TEST(DecompModel, HybridReplicaExchangeLandsOnTheIsland) {
  // With islands the replica (CommA) exchange is nearly free, so the
  // hybrid's comm time undercuts the pencil's at the same rank count; on
  // an island-less paper machine the same layout loses its edge.
  const job_config j = gpu_job(65536);
  const predictor gpu(machine::gpu_fattree_2026());
  machine flat = machine::gpu_fattree_2026();
  flat.island_size = 1;
  flat.island_bw = 0.0;
  const predictor no_island(flat);
  const auto with_island = gpu.timestep_decomp(j, decomp_kind::hybrid_25d, 64);
  const auto without = no_island.timestep_decomp(j, decomp_kind::hybrid_25d, 64);
  ASSERT_TRUE(with_island.valid);
  ASSERT_TRUE(without.valid);
  EXPECT_LT(with_island.t.comm, without.t.comm);
  EXPECT_LT(with_island.t.comm,
            gpu.timestep_decomp(j, decomp_kind::pencil2d).t.comm);
}

TEST(DecompModel, ExplicitReplicaCountIsHonoredAndValidated) {
  const predictor p(machine::gpu_fattree_2026());
  const job_config j = gpu_job(65536);
  const auto h = p.timestep_decomp(j, decomp_kind::hybrid_25d, 32);
  ASSERT_TRUE(h.valid);
  EXPECT_EQ(h.pa, 32);
  EXPECT_EQ(h.pb, 2048);
  // c must divide the rank count...
  EXPECT_FALSE(p.timestep_decomp(j, decomp_kind::hybrid_25d, 3).valid);
  // ...and leave each replica's slab within the row limit.
  EXPECT_FALSE(p.timestep_decomp(j, decomp_kind::hybrid_25d, 2).valid);
}

TEST(DecompModel, FastestDecompIsTheArgminOfTheValidSet) {
  const predictor p(machine::gpu_fattree_2026());
  for (long gpus : {1024L, 16384L, 262144L}) {
    const job_config j = gpu_job(gpus);
    const auto best = p.fastest_decomp(j);
    ASSERT_TRUE(best.valid) << gpus;
    for (auto k : {decomp_kind::pencil2d, decomp_kind::slab,
                   decomp_kind::hybrid_25d}) {
      const auto r = p.timestep_decomp(j, k);
      if (r.valid) {
        EXPECT_LE(best.t.total(), r.t.total() + 1e-12) << gpus;
      }
    }
  }
}

TEST(DecompModel, CrossoverSequenceOnTheGpuMachine) {
  // The study's headline shape: while the grid still admits it, a
  // comm-avoiding layout (slab or hybrid — the hybrid subsumes the slab
  // once replica exchanges ride the island) beats the pencil's two
  // network exchanges; past the slab validity limit only the hybrid
  // carries that advantage into the 10^5..10^6-rank regime.
  const predictor p(machine::gpu_fattree_2026());
  const auto small = p.fastest_decomp(gpu_job(1024));
  EXPECT_NE(small.kind, decomp_kind::pencil2d);
  EXPECT_LT(p.timestep_decomp(gpu_job(1024), decomp_kind::slab).t.total(),
            p.timestep_decomp(gpu_job(1024), decomp_kind::pencil2d).t.total());
  const auto large = p.fastest_decomp(gpu_job(262144));
  EXPECT_FALSE(p.timestep_decomp(gpu_job(262144), decomp_kind::slab).valid);
  ASSERT_TRUE(large.valid);
  EXPECT_NE(large.kind, decomp_kind::slab);
}

}  // namespace
