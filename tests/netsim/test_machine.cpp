#include <gtest/gtest.h>

#include "netsim/machine.hpp"

namespace {

using pcf::netsim::machine;
using pcf::netsim::topology;

TEST(Machine, FourBenchmarkSystemsExist) {
  EXPECT_EQ(machine::mira().topo, topology::torus5d);
  EXPECT_EQ(machine::blue_waters().topo, topology::torus3d);
  EXPECT_EQ(machine::lonestar().topo, topology::fat_tree);
  EXPECT_EQ(machine::stampede().topo, topology::fat_tree);
}

TEST(Machine, MiraMatchesPaperParameters) {
  auto m = machine::mira();
  EXPECT_EQ(m.cores_per_node, 16);
  EXPECT_EQ(m.smt_per_core, 4);
  EXPECT_DOUBLE_EQ(m.core_peak_gflops, 12.8);      // paper Section 4.1.2
  EXPECT_DOUBLE_EQ(m.advance_gflops_per_core, 1.16);  // paper Table 2
  EXPECT_NEAR(m.mem_bw_node, 28.8e9, 1e8);         // 18 B/cycle at 1.6 GHz
}

TEST(Machine, BisectionDecreasesWithNodeCount) {
  for (auto m : {machine::mira(), machine::blue_waters(), machine::lonestar()}) {
    double prev = m.bisection_per_node(2);
    for (double nodes : {8.0, 64.0, 512.0, 4096.0, 32768.0}) {
      const double b = m.bisection_per_node(nodes);
      EXPECT_LE(b, prev + 1e-9) << m.name << " at " << nodes;
      EXPECT_GT(b, 0.0);
      prev = b;
    }
  }
}

TEST(Machine, FiveDTorusDegradesSlowerThanThreeD) {
  // The paper's core architectural claim: Mira's 5-D torus keeps far more
  // bisection per node at scale than Blue Waters' 3-D Gemini torus.
  auto mira = machine::mira();
  auto bw = machine::blue_waters();
  const double small_ratio =
      mira.bisection_per_node(16) / bw.bisection_per_node(16);
  const double large_ratio =
      mira.bisection_per_node(16384) / bw.bisection_per_node(16384);
  EXPECT_GT(large_ratio, small_ratio);
}

TEST(Machine, SingleNodeBisectionIsMemoryBandwidth) {
  auto m = machine::mira();
  EXPECT_DOUBLE_EQ(m.bisection_per_node(1), m.mem_bw_node);
}

TEST(Machine, FatTreeApproachesOversubscribedLimit) {
  auto m = machine::stampede();
  const double full = m.bisection_per_node(static_cast<double>(m.total_nodes));
  EXPECT_NEAR(full, m.nic_bw / m.fat_tree_oversub, 0.05 * m.nic_bw);
}

}  // namespace
