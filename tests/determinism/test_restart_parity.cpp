// Restart-continuation parity: a run interrupted at step k, destroyed,
// restored from a checkpoint and continued must reproduce the
// uninterrupted run's per-step state CRCs exactly, for every checkpoint
// format and k in {1, mid, N-1}. RK3 carries no nonlinear history across
// step boundaries (zeta_1 = 0), so a checkpoint written at a step
// boundary captures the complete dynamical state — any divergence is a
// bug, and the harness names the step and field where it appears.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "determinism_test_util.hpp"
#include "core/runner.hpp"
#include "io/atomic_file.hpp"
#include "vmpi/vmpi.hpp"

namespace {

using pcf::core::channel_config;
using pcf::core::channel_dns;
using pcf::core::restore_newest_generation;
using pcf::core::resume_or_initialize;
using pcf::determinism::compare;
using pcf::determinism::describe;
using pcf::determinism::divergence;
using pcf::determinism::record_trace;
using pcf::determinism::trace;
using pcf::vmpi::communicator;
using pcf::vmpi::run_world;
using namespace pcf_determinism_test;

constexpr int kSteps = PCF_UNDER_TSAN ? 6 : 12;

enum class fmt { per_rank, global, parallel };

const char* fmt_name(fmt f) {
  switch (f) {
    case fmt::per_rank: return "per_rank";
    case fmt::global: return "global";
    default: return "parallel";
  }
}

std::string rank_suffix(const communicator& world) {
  return "." + std::to_string(world.rank());
}

/// The uninterrupted reference trace (nranks = 1 unless stated; every
/// scenario below compares its continuation against rows k..N of this).
trace& baseline() {
  static trace t = [] {
    trace b;
    const std::string scratch =
        ::testing::TempDir() + "/pcf_det_restart_baseline";
    run_world(1, [&](communicator& world) {
      channel_dns dns(quickstart_config(), world);
      dns.initialize(kQuickstartPerturbation, kQuickstartSeed);
      b = record_trace(dns, kSteps, scratch);
    });
    std::remove(scratch.c_str());
    return b;
  }();
  return t;
}

trace tail_from(const trace& full, int k) {
  trace t;
  t.steps.assign(full.steps.begin() + k, full.steps.end());
  return t;
}

/// Interrupt at step k under `f`, destroy the simulation, restore a fresh
/// instance from the file, continue to step N, and return the restored
/// run's per-step trace (rows k..N).
trace interrupted_run(fmt f, int k, int nranks) {
  const std::string base = scratch_path(std::string(fmt_name(f)) + "_k" +
                                        std::to_string(k));
  const std::string ckpt = base + ".ckpt";
  const std::string scratch = base + ".fp";
  const channel_config cfg = quickstart_config();

  run_world(nranks, [&](communicator& world) {
    channel_dns dns(cfg, world);
    dns.initialize(kQuickstartPerturbation, kQuickstartSeed);
    for (int s = 0; s < k; ++s) dns.step();
    switch (f) {
      case fmt::per_rank:
        // Through the runner's generation rotation, as a campaign would.
        dns.save_checkpoint(
            pcf::io::generation_path(ckpt, dns.step_count()) +
            rank_suffix(world));
        break;
      case fmt::global:
        dns.save_checkpoint_global(ckpt);
        break;
      case fmt::parallel:
        dns.save_checkpoint_parallel(ckpt);
        break;
    }
  });  // simulation destroyed here

  trace cont;
  run_world(nranks, [&](communicator& world) {
    channel_dns dns(cfg, world);
    switch (f) {
      case fmt::per_rank: {
        const long g = resume_or_initialize(dns, world, ckpt,
                                            kQuickstartPerturbation,
                                            kQuickstartSeed);
        EXPECT_EQ(g, k);
        break;
      }
      case fmt::global:
        dns.load_checkpoint_global(ckpt);
        break;
      case fmt::parallel:
        dns.load_checkpoint_parallel(ckpt);
        break;
    }
    EXPECT_EQ(dns.step_count(), k);
    const trace local = record_trace(dns, kSteps - k, scratch);
    if (world.rank() == 0) cont = local;
  });

  std::remove(scratch.c_str());
  std::remove(ckpt.c_str());
  std::remove((ckpt + ".0").c_str());
  for (int r = 0; r < nranks; ++r)
    std::remove(
        (pcf::io::generation_path(ckpt, k) + "." + std::to_string(r)).c_str());
  return cont;
}

class RestartParity : public ::testing::TestWithParam<fmt> {};

// k in {1, mid, N-1} for each format: the restored-and-continued run's
// trace must equal the uninterrupted run's rows k..N bit for bit.
TEST_P(RestartParity, ContinuationMatchesUninterruptedRun) {
  const fmt f = GetParam();
  for (int k : {1, kSteps / 2, kSteps - 1}) {
    const trace cont = interrupted_run(f, k, 1);
    const auto divs = compare(tail_from(baseline(), k), cont);
    EXPECT_TRUE(divs.empty())
        << "format " << fmt_name(f) << ", checkpoint at step " << k
        << ": restored run diverged:\n"
        << describe(divs);
  }
}

INSTANTIATE_TEST_SUITE_P(AllFormats, RestartParity,
                         ::testing::Values(fmt::per_rank, fmt::global,
                                           fmt::parallel),
                         [](const auto& info) {
                           return std::string(fmt_name(info.param));
                         });

// The decomposition-changing restart: interrupt on one rank, continue on
// 2 x 2 (global format is decomposition-independent) — same trace.
TEST(RestartParityMultiRank, GlobalRestartOntoDifferentGridMatches) {
  const int k = kSteps / 2;
  const std::string base = scratch_path("regrid");
  const std::string ckpt = base + ".ckpt";
  const std::string scratch = base + ".fp";

  run_world(1, [&](communicator& world) {
    channel_dns dns(quickstart_config(), world);
    dns.initialize(kQuickstartPerturbation, kQuickstartSeed);
    for (int s = 0; s < k; ++s) dns.step();
    dns.save_checkpoint_global(ckpt);
  });

  trace cont;
  channel_config cfg = quickstart_config();
  cfg.pa = 2;
  cfg.pb = 2;
  run_world(4, [&](communicator& world) {
    channel_dns dns(cfg, world);
    dns.load_checkpoint_global(ckpt);
    const trace local = record_trace(dns, kSteps - k, scratch);
    if (world.rank() == 0) cont = local;
  });
  std::remove(scratch.c_str());
  std::remove(ckpt.c_str());

  const auto divs = compare(tail_from(baseline(), k), cont);
  EXPECT_TRUE(divs.empty()) << "1-rank -> 2x2 global restart diverged:\n"
                            << describe(divs);
}

// Per-rank restart parity on a 2-rank split (resume_or_initialize walks
// the generation list collectively).
TEST(RestartParityMultiRank, PerRankRestartOnTwoRanksMatches) {
  const int k = kSteps / 2;
  channel_config cfg = quickstart_config();
  cfg.pa = 2;

  const std::string base = scratch_path("tworank");
  const std::string ckpt = base + ".ckpt";
  const std::string scratch = base + ".fp";

  trace uninterrupted;
  run_world(2, [&](communicator& world) {
    channel_dns dns(cfg, world);
    dns.initialize(kQuickstartPerturbation, kQuickstartSeed);
    const trace local = record_trace(dns, kSteps, scratch);
    if (world.rank() == 0) uninterrupted = local;
  });
  {
    const auto divs = compare(baseline(), uninterrupted);
    ASSERT_TRUE(divs.empty())
        << "2-rank uninterrupted run diverged from 1-rank baseline:\n"
        << describe(divs);
  }

  run_world(2, [&](communicator& world) {
    channel_dns dns(cfg, world);
    dns.initialize(kQuickstartPerturbation, kQuickstartSeed);
    for (int s = 0; s < k; ++s) dns.step();
    dns.save_checkpoint(pcf::io::generation_path(ckpt, dns.step_count()) +
                        rank_suffix(world));
  });

  trace cont;
  run_world(2, [&](communicator& world) {
    channel_dns dns(cfg, world);
    const long g = resume_or_initialize(dns, world, ckpt,
                                        kQuickstartPerturbation,
                                        kQuickstartSeed);
    EXPECT_EQ(g, k);
    const trace local = record_trace(dns, kSteps - k, scratch);
    if (world.rank() == 0) cont = local;
  });
  std::remove(scratch.c_str());
  for (int r = 0; r < 2; ++r)
    std::remove(
        (pcf::io::generation_path(ckpt, k) + "." + std::to_string(r)).c_str());

  const auto divs = compare(tail_from(uninterrupted, k), cont);
  EXPECT_TRUE(divs.empty()) << "2-rank per-rank restart diverged:\n"
                            << describe(divs);
}

// The blow-up recovery path (runner's reduced-dt retry): blow the run up
// with an absurd dt, restore the newest good generation IN PLACE — the
// solver arenas still hold bands factored for the blow-up dt — reduce dt,
// and continue. The continuation must be bit-identical to a fresh
// instance restored from the same generation with the same reduced dt:
// stale factored bands surviving the restore would diverge at step one.
TEST(RestartRecovery, InPlaceRestoreWithReducedDtMatchesFreshInstance) {
  const int k = 3, m = PCF_UNDER_TSAN ? 3 : 6;
  const double reduced_dt = 5e-5;
  const std::string base = scratch_path("blowup");
  const std::string ckpt = base + ".ckpt";
  const std::string scratch = base + ".fp";

  trace recovered;
  run_world(1, [&](communicator& world) {
    channel_dns dns(quickstart_config(), world);
    dns.initialize(kQuickstartPerturbation, kQuickstartSeed);
    for (int s = 0; s < k; ++s) dns.step();
    dns.save_checkpoint(pcf::io::generation_path(ckpt, dns.step_count()) +
                        rank_suffix(world));
    // Provoke the blow-up: a dt four orders of magnitude past stability.
    dns.set_dt(1.0);
    for (int s = 0; s < 8 && std::isfinite(dns.kinetic_energy()); ++s)
      dns.step();
    ASSERT_FALSE(std::isfinite(dns.kinetic_energy()))
        << "blow-up provocation failed; the recovery path was not exercised";
    const long g = restore_newest_generation(dns, world, ckpt);
    ASSERT_EQ(g, k);
    dns.set_dt(reduced_dt);
    recovered = record_trace(dns, m, scratch);
  });

  trace fresh;
  run_world(1, [&](communicator& world) {
    channel_dns dns(quickstart_config(), world);
    dns.load_checkpoint(pcf::io::generation_path(ckpt, k) + ".0");
    dns.set_dt(reduced_dt);
    fresh = record_trace(dns, m, scratch);
  });
  std::remove(scratch.c_str());
  std::remove((pcf::io::generation_path(ckpt, k) + ".0").c_str());

  const auto divs = compare(fresh, recovered);
  EXPECT_TRUE(divs.empty())
      << "in-place blow-up recovery diverged from a fresh restore:\n"
      << describe(divs);
}

// Same-instance reload without any dt change: load_checkpoint must reset
// the run to the saved state exactly even when the instance has already
// stepped past it (the arenas and histories carry no pre-restore state).
TEST(RestartRecovery, InPlaceReloadRewindsExactly) {
  const int k = 2, m = PCF_UNDER_TSAN ? 3 : 5;
  const std::string base = scratch_path("rewind");
  const std::string ckpt = base + ".ckpt.0";
  const std::string scratch = base + ".fp";

  run_world(1, [&](communicator& world) {
    channel_dns dns(quickstart_config(), world);
    dns.initialize(kQuickstartPerturbation, kQuickstartSeed);
    for (int s = 0; s < k; ++s) dns.step();
    dns.save_checkpoint(ckpt);
    const trace onward = record_trace(dns, m, scratch);
    dns.load_checkpoint(ckpt);
    EXPECT_EQ(dns.step_count(), k);
    const trace replay = record_trace(dns, m, scratch);
    const auto divs = compare(onward, replay);
    EXPECT_TRUE(divs.empty())
        << "in-place rewind replay diverged:\n"
        << describe(divs);
  });
  std::remove(scratch.c_str());
  std::remove(ckpt.c_str());
}

}  // namespace
