// Scenario axis of the determinism matrix: the bit-identity contract
// (DESIGN.md) extends to every scenario — Couette walls, constant
// flow-rate forcing, passive scalars. Each scenario pins ONE per-step CRC
// trace across thread counts and rank decompositions, and the scenario
// checkpoint sections join the fingerprint through crc_scalars (nonzero
// exactly when scenario state exists, so default-channel golden traces
// stay frozen).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "determinism_test_util.hpp"
#include "vmpi/vmpi.hpp"

namespace {

using pcf::core::channel_config;
using pcf::core::channel_dns;
using pcf::core::forcing_mode;
using pcf::core::scalar_spec;
using pcf::determinism::compare;
using pcf::determinism::describe;
using pcf::determinism::read_trace_csv;
using pcf::determinism::record_trace;
using pcf::determinism::trace;
using pcf::determinism::write_trace_csv;
using pcf::vmpi::communicator;
using pcf::vmpi::run_world;
using namespace pcf_determinism_test;

constexpr int kSteps = PCF_UNDER_TSAN ? 4 : 8;

/// The three scenario variants of the quickstart configuration. Every
/// variation below (threads, decomposition) must reproduce the variant's
/// own single-rank single-thread trace.
channel_config couette_config() {
  channel_config cfg = quickstart_config();
  cfg.scenario.wall_u_lo = -1.0;
  cfg.scenario.wall_u_hi = 1.0;
  cfg.scenario.wall_w_lo = -0.25;
  cfg.scenario.wall_w_hi = 0.25;
  return cfg;
}

channel_config flow_rate_config() {
  channel_config cfg = quickstart_config();
  cfg.scenario.forcing = forcing_mode::flow_rate;
  return cfg;
}

channel_config scalar_config() {
  channel_config cfg = quickstart_config();
  // Two scalars sharing one Prandtl number plus a distinct one: the
  // implicit stage groups equal-kappa scalars into one blocked band
  // solve, and the grouping must not change bits or ordering.
  cfg.scenario.scalars.push_back(scalar_spec{0.71, 0.0, 1.0});
  cfg.scenario.scalars.push_back(scalar_spec{0.71, -1.0, 1.0});
  cfg.scenario.scalars.push_back(scalar_spec{7.0, 0.0, 0.0});
  return cfg;
}

trace run_config(const channel_config& cfg, const std::string& tag) {
  trace t;
  const std::string scratch = scratch_path(tag);
  run_world(cfg.pa * cfg.pb, [&](communicator& world) {
    channel_dns dns(cfg, world);
    dns.initialize(kQuickstartPerturbation, kQuickstartSeed);
    const trace local = record_trace(dns, kSteps, scratch);
    if (world.rank() == 0) t = local;
  });
  std::remove(scratch.c_str());
  return t;
}

/// One trace per data-movement variation: single-rank baseline, threaded
/// (advance + FFT + reorder), and two rank splits with the pipelined
/// exchange path.
void expect_one_trace(channel_config base, const std::string& name) {
  const trace baseline = run_config(base, name + "_base");

  channel_config threaded = base;
  threaded.advance_threads = 2;
  threaded.fft_threads = 2;
  threaded.reorder_threads = 2;
  channel_config split_a = base;
  split_a.pa = 2;
  split_a.pb = 1;
  channel_config split_b = base;
  split_b.pa = 2;
  split_b.pb = 2;
  split_b.pipeline_depth = 2;
  const std::pair<channel_config, std::string> variants[] = {
      {threaded, name + "_t2"},
      {split_a, name + "_p2x1"},
      {split_b, name + "_p2x2_d2"},
  };
  for (const auto& [cfg, tag] : variants) {
    const trace t = run_config(cfg, tag);
    const auto divs = compare(baseline, t);
    EXPECT_TRUE(divs.empty()) << "config '" << tag
                              << "' diverged from the scenario baseline:\n"
                              << describe(divs);
    if (::testing::Test::HasFailure()) return;
  }
}

}  // namespace

TEST(DeterminismScenarios, CouetteWallsProduceOneTrace) {
  expect_one_trace(couette_config(), "couette");
}

TEST(DeterminismScenarios, ConstantFlowRateProducesOneTrace) {
  expect_one_trace(flow_rate_config(), "flowrate");
}

TEST(DeterminismScenarios, PassiveScalarsProduceOneTrace) {
  expect_one_trace(scalar_config(), "scalars");
}

TEST(DeterminismScenarios, PooledWorkspaceReproducesScalarTrace) {
  // Scenario state lives in the same leasable arenas as the velocity
  // fields; suspend/release/re-lease cycles must not move a bit.
  channel_config base = scalar_config();
  const trace owned = run_config(base, "owned");
  channel_config pooled = base;
  pooled.pooled_workspace = true;
  const trace leased = run_config(pooled, "pooled");
  const auto divs = compare(owned, leased);
  EXPECT_TRUE(divs.empty()) << describe(divs);
}

TEST(DeterminismScenarios, ScenarioSectionsJoinTheFingerprint) {
  // Scalars and flow-rate state write checkpoint sections, so their
  // fingerprints must carry a nonzero crc_scalars; Couette state lives
  // entirely in the frozen mean section and must NOT grow the format.
  const trace sc = run_config(scalar_config(), "sc_fp");
  for (const auto& fp : sc.steps) EXPECT_NE(fp.crc_scalars, 0u);
  const trace fr = run_config(flow_rate_config(), "fr_fp");
  for (const auto& fp : fr.steps) EXPECT_NE(fp.crc_scalars, 0u);
  const trace co = run_config(couette_config(), "co_fp");
  for (const auto& fp : co.steps) EXPECT_EQ(fp.crc_scalars, 0u);
}

TEST(DeterminismScenarios, ExtendedTraceCsvRoundTrips) {
  // A scenario trace serializes with the extended header (crc_scalars
  // column); the reader must accept it and reproduce the rows exactly.
  // The legacy 8-column header keeps working for default-channel traces
  // (covered by the golden suite).
  const trace t = run_config(scalar_config(), "csv");
  const std::string path = scratch_path("csv_file");
  write_trace_csv(path, t);
  const trace back = read_trace_csv(path);
  std::remove(path.c_str());
  const auto divs = compare(t, back);
  EXPECT_TRUE(divs.empty()) << describe(divs);
}
