// Golden step-by-step CRC trace: the first 25 quickstart steps, committed
// as tests/determinism/golden_trace_quickstart.csv. Any refactor that
// perturbs a single bit of the evolved state fails here with the exact
// step and state field where the divergence appeared — the per-step
// extension of the end-state CRC 0x3fa23d27 pin that PRs 2-4 carried.
//
// Regenerating (only when a change is *supposed* to alter the physics):
//   PCF_REGEN_GOLDEN=1 ./test_determinism_golden
// rewrites the committed CSV in the source tree; review the diff like any
// other golden-artifact change.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "determinism_test_util.hpp"
#include "vmpi/vmpi.hpp"

namespace {

using pcf::core::channel_dns;
using pcf::determinism::compare;
using pcf::determinism::describe;
using pcf::determinism::file_crc32;
using pcf::determinism::read_trace_csv;
using pcf::determinism::record_trace;
using pcf::determinism::trace;
using pcf::determinism::write_trace_csv;
using pcf::vmpi::communicator;
using pcf::vmpi::run_world;
using namespace pcf_determinism_test;

constexpr int kGoldenSteps = 25;
// End-state pins carried since PR 1: the per-rank v2 checkpoint of the
// quickstart state after 25 steps, byte layout frozen.
constexpr std::uint32_t kGoldenCheckpointCrc = 0x3fa23d27u;

const std::string kGoldenCsv =
    std::string(PCF_SOURCE_DIR) + "/tests/determinism/golden_trace_quickstart.csv";

TEST(DeterminismGolden, QuickstartTraceMatchesCommittedGolden) {
  if (PCF_UNDER_TSAN) GTEST_SKIP() << "golden artifacts excluded from the "
                                      "sanitizer matrix (runtime bound)";
  const std::string scratch = scratch_path("fp");
  const std::string ckpt = scratch_path("ckpt");
  trace t;
  std::uint32_t ckpt_crc = 0;
  run_world(1, [&](communicator& world) {
    channel_dns dns(quickstart_config(), world);
    dns.initialize(kQuickstartPerturbation, kQuickstartSeed);
    t = record_trace(dns, kGoldenSteps, scratch);
    dns.save_checkpoint(ckpt);
    ckpt_crc = file_crc32(ckpt);
  });
  std::remove(scratch.c_str());
  std::remove(ckpt.c_str());

  // The committed end-state lineage holds regardless of the CSV.
  EXPECT_EQ(ckpt_crc, kGoldenCheckpointCrc)
      << "per-rank checkpoint byte layout or evolved state changed";

  if (std::getenv("PCF_REGEN_GOLDEN") != nullptr) {
    write_trace_csv(kGoldenCsv, t);
    GTEST_SKIP() << "regenerated " << kGoldenCsv;
  }
  const trace golden = read_trace_csv(kGoldenCsv);
  ASSERT_EQ(golden.steps.size(),
            static_cast<std::size_t>(kGoldenSteps) + 1);
  const auto divs = compare(golden, t);
  EXPECT_TRUE(divs.empty())
      << "quickstart trace diverged from the committed golden trace:\n"
      << describe(divs);
}

// The golden CSV itself round-trips bit-exactly through the writer/parser
// (each row carries a combined CRC the parser re-derives).
TEST(DeterminismGolden, GoldenCsvRoundTrips) {
  if (PCF_UNDER_TSAN) GTEST_SKIP() << "golden artifacts excluded from the "
                                      "sanitizer matrix (runtime bound)";
  const trace golden = read_trace_csv(kGoldenCsv);
  const std::string copy = scratch_path("roundtrip.csv");
  write_trace_csv(copy, golden);
  const trace again = read_trace_csv(copy);
  std::remove(copy.c_str());
  const auto divs = compare(golden, again);
  EXPECT_TRUE(divs.empty()) << describe(divs);
}

}  // namespace
