// Autotuner bit-identity: whatever the tuner decides — any exchange
// strategy pair, any batch width F, any pipeline depth, measured cold or
// replayed from the on-disk cache — the physics trace must be the ONE
// quickstart trace. The tuner is allowed to change timings only, never
// bits; this is the contract that lets a cache file move between runs
// (and machines) without touching results.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/stages/stage_context.hpp"
#include "determinism_test_util.hpp"
#include "pencil/autotune.hpp"
#include "vmpi/vmpi.hpp"

namespace {

using pcf::core::channel_config;
using pcf::core::channel_dns;
using pcf::core::dns_tune_key;
using pcf::determinism::compare;
using pcf::determinism::describe;
using pcf::determinism::record_trace;
using pcf::determinism::trace;
using pcf::pencil::exchange_strategy;
using pcf::pencil::save_tuning_cache;
using pcf::pencil::tune_choice;
using pcf::pencil::tune_entry;
using pcf::vmpi::communicator;
using pcf::vmpi::run_world;
using namespace pcf_determinism_test;

constexpr int kSteps = PCF_UNDER_TSAN ? 6 : 12;

trace run_config(const channel_config& cfg, const std::string& tag) {
  trace t;
  const std::string scratch = scratch_path(tag);
  run_world(cfg.pa * cfg.pb, [&](communicator& world) {
    channel_dns dns(cfg, world);
    dns.initialize(kQuickstartPerturbation, kQuickstartSeed);
    const trace local = record_trace(dns, kSteps, scratch);
    if (world.rank() == 0) t = local;
  });
  std::remove(scratch.c_str());
  return t;
}

trace& baseline() {
  static trace t = run_config(quickstart_config(), "baseline");
  return t;
}

void expect_matches_baseline(const channel_config& cfg,
                             const std::string& tag) {
  const trace t = run_config(cfg, tag);
  const auto divs = compare(baseline(), t);
  EXPECT_TRUE(divs.empty()) << "autotuned config '" << tag
                            << "' diverged from the baseline trace:\n"
                            << describe(divs);
}

/// Write a cache holding exactly `choice` for `cfg`'s tuning key, so the
/// autotuner "measures" nothing and is forced into that decision.
std::string seed_cache(const channel_config& cfg, const tune_choice& choice,
                       const std::string& tag) {
  const std::string path = scratch_path(tag + "_cache");
  std::remove(path.c_str());
  save_tuning_cache(path, {tune_entry{dns_tune_key(cfg), choice}});
  return path;
}

// Force every batch/depth decision the tuner can make (F in {1, 3, 5} x
// depth in {1, 2}, depth <= F) through a pre-seeded cache: one trace.
TEST(DeterminismAutotune, PreSeededBatchDepthChoicesProduceOneTrace) {
  for (int batch : {1, 3, 5}) {
    for (int depth : {1, 2}) {
      if (depth > batch) continue;
      channel_config cfg = quickstart_config();
      cfg.autotune = true;
      tune_choice choice;
      choice.batch = batch;
      choice.pipeline_depth = depth;
      const std::string tag =
          "f" + std::to_string(batch) + "_d" + std::to_string(depth);
      cfg.tuning_cache = seed_cache(cfg, choice, tag);
      expect_matches_baseline(cfg, tag);
      std::remove(cfg.tuning_cache.c_str());
      if (::testing::Test::HasFailure()) return;  // first divergence only
    }
  }
}

// Every exchange-strategy pair the tuner can pick, on a 2 x 2 rank split
// where alltoall and pairwise are genuinely different code paths.
TEST(DeterminismAutotune, PreSeededStrategyPairsProduceOneTrace) {
  const exchange_strategy cand[2] = {exchange_strategy::alltoall,
                                     exchange_strategy::pairwise};
  for (const exchange_strategy sa : cand) {
    for (const exchange_strategy sb : cand) {
      channel_config cfg = quickstart_config();
      cfg.pa = 2;
      cfg.pb = 2;
      cfg.autotune = true;
      tune_choice choice;
      choice.strat_a = sa;
      choice.strat_b = sb;
      choice.batch = 5;
      choice.pipeline_depth = 2;
      const std::string tag =
          std::string("s") + (sa == cand[0] ? "a" : "p") +
          (sb == cand[0] ? "a" : "p");
      cfg.tuning_cache = seed_cache(cfg, choice, tag);
      expect_matches_baseline(cfg, tag);
      std::remove(cfg.tuning_cache.c_str());
      if (::testing::Test::HasFailure()) return;
    }
  }
}

// Cold tune (measure + store) and the subsequent cache hit must both
// reproduce the baseline — and must agree with each other by
// construction, since the hit replays the cold run's stored choice.
TEST(DeterminismAutotune, ColdTuneAndCacheHitProduceOneTrace) {
  channel_config cfg = quickstart_config();
  cfg.autotune = true;
  cfg.tuning_cache = scratch_path("cold_cache");
  std::remove(cfg.tuning_cache.c_str());
  expect_matches_baseline(cfg, "cold");   // measures, stores
  expect_matches_baseline(cfg, "hit");    // replays the stored choice
  std::remove(cfg.tuning_cache.c_str());
}

// Autotuning with no cache file at all (measure every construction).
TEST(DeterminismAutotune, UncachedAutotuneProducesTheTrace) {
  channel_config cfg = quickstart_config();
  cfg.autotune = true;
  expect_matches_baseline(cfg, "uncached");
}

}  // namespace
