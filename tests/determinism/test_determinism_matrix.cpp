// Cross-configuration bit-identity: every data-movement axis — advance /
// FFT / reorder thread counts, transform batch width F, pipeline depth,
// and the virtual-rank decomposition — must produce ONE identical per-step
// CRC trace at the quickstart configuration (DESIGN.md, "Determinism
// contract"). A divergence fails with the step and state field where the
// first differing bit appeared.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "determinism_test_util.hpp"
#include "vmpi/vmpi.hpp"

namespace {

using pcf::core::channel_config;
using pcf::core::channel_dns;
using pcf::determinism::compare;
using pcf::determinism::describe;
using pcf::determinism::record_trace;
using pcf::determinism::trace;
using pcf::vmpi::communicator;
using pcf::vmpi::run_world;
using namespace pcf_determinism_test;

// Shortened trace under ThreadSanitizer (~10x step cost); the full-length
// trace is covered by the regular run of the same tests.
constexpr int kSteps = PCF_UNDER_TSAN ? 6 : 12;

/// Run the quickstart campaign under `cfg` on cfg.pa * cfg.pb virtual
/// ranks and return the per-step fingerprint trace (rank 0's copy; all
/// ranks compute the identical trace).
trace run_config(const channel_config& cfg, const std::string& tag,
                 int nsteps = kSteps) {
  trace t;
  const std::string scratch = scratch_path(tag);
  run_world(cfg.pa * cfg.pb, [&](communicator& world) {
    channel_dns dns(cfg, world);
    dns.initialize(kQuickstartPerturbation, kQuickstartSeed);
    const trace local = record_trace(dns, nsteps, scratch);
    if (world.rank() == 0) t = local;
  });
  std::remove(scratch.c_str());
  return t;
}

trace& baseline() {
  static trace t = run_config(quickstart_config(), "baseline");
  return t;
}

void expect_matches_baseline(const channel_config& cfg,
                             const std::string& tag) {
  const trace t = run_config(cfg, tag);
  const auto divs = compare(baseline(), t);
  EXPECT_TRUE(divs.empty()) << "config '" << tag
                            << "' diverged from the baseline trace:\n"
                            << describe(divs);
}

// The headline matrix: full cross of thread count {1, 2, 4} x
// pipeline_depth {1, 2} x batch width F {1, 3, 5} on one rank. 18 runs,
// one trace.
TEST(DeterminismMatrix, ThreadsDepthBatchCrossProduceOneTrace) {
  for (int threads : {1, 2, 4}) {
    for (int depth : {1, 2}) {
      for (int batch : {1, 3, 5}) {
        channel_config cfg = quickstart_config();
        cfg.advance_threads = threads;
        cfg.fft_threads = threads;
        cfg.reorder_threads = threads;
        cfg.pipeline_depth = depth;
        cfg.max_batch = batch;
        const std::string tag = "t" + std::to_string(threads) + "_d" +
                                std::to_string(depth) + "_f" +
                                std::to_string(batch);
        expect_matches_baseline(cfg, tag);
        if (::testing::Test::HasFailure()) return;  // first divergence only
      }
    }
  }
}

// Virtual-rank decompositions: the gathered-global fingerprint is
// decomposition-independent, so every pa x pb split must reproduce the
// single-rank trace — serial and pipelined exchange paths both.
TEST(DeterminismMatrix, RankSplitsProduceOneTrace) {
  struct split {
    int pa, pb;
  };
  for (const split s : {split{2, 1}, split{1, 2}, split{2, 2}}) {
    for (int depth : {1, 2}) {
      channel_config cfg = quickstart_config();
      cfg.pa = s.pa;
      cfg.pb = s.pb;
      cfg.pipeline_depth = depth;
      const std::string tag = "p" + std::to_string(s.pa) + "x" +
                              std::to_string(s.pb) + "_d" +
                              std::to_string(depth);
      expect_matches_baseline(cfg, tag);
      if (::testing::Test::HasFailure()) return;
    }
  }
}

// Regression for the F < pipeline_depth corner: a chunk narrower than the
// pipeline must clamp the group count instead of submitting empty
// exchange groups to the comm thread. F = 1 forces every chunk through
// the single-field path while comm_async is live, across ranks.
TEST(DeterminismMatrix, ClampWhenBatchNarrowerThanPipeline) {
  channel_config cfg = quickstart_config();
  cfg.max_batch = 1;
  cfg.pipeline_depth = 2;
  expect_matches_baseline(cfg, "f1_d2_serial");
  cfg.pa = 2;
  expect_matches_baseline(cfg, "f1_d2_p2x1");
}

// F = 2 with depth 2 makes the *trailing* chunk of the five-field batch a
// single field (5 = 2 + 2 + 1): the pipelined path must hand the short
// chunk to the serial driver and stay bit-identical.
TEST(DeterminismMatrix, TrailingShortChunkStaysBitIdentical) {
  channel_config cfg = quickstart_config();
  cfg.max_batch = 2;
  cfg.pipeline_depth = 2;
  expect_matches_baseline(cfg, "f2_d2");
}

}  // namespace
