// Decomposition axis of the determinism matrix: the slab, 2.5D hybrid
// and tuned layouts must reproduce the single-rank quickstart trace
// bit-for-bit at every rank count they are runnable at (4..64 virtual
// ranks here). The comm-avoiding paths elide exchanges by forwarding
// packed buffers — this suite is the proof the forwarding never changes
// bits, and that a tuner-chosen layout (cold measure or cache replay)
// doesn't either.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "determinism_test_util.hpp"
#include "vmpi/vmpi.hpp"

namespace {

using pcf::core::channel_config;
using pcf::core::channel_dns;
using pcf::determinism::compare;
using pcf::determinism::describe;
using pcf::determinism::record_trace;
using pcf::determinism::trace;
using pcf::pencil::decomposition;
using pcf::vmpi::communicator;
using pcf::vmpi::run_world;
using namespace pcf_determinism_test;

constexpr int kSteps = PCF_UNDER_TSAN ? 6 : 12;

/// Run the quickstart campaign on `nranks` virtual ranks (the resolved
/// layout may rewrite cfg.pa/pb, so the rank count is explicit here) and
/// return the per-step fingerprint trace.
trace run_config(const channel_config& cfg, int nranks,
                 const std::string& tag) {
  trace t;
  const std::string scratch = scratch_path(tag);
  run_world(nranks, [&](communicator& world) {
    channel_dns dns(cfg, world);
    dns.initialize(kQuickstartPerturbation, kQuickstartSeed);
    const trace local = record_trace(dns, kSteps, scratch);
    if (world.rank() == 0) t = local;
  });
  std::remove(scratch.c_str());
  return t;
}

trace& baseline() {
  static trace t = run_config(quickstart_config(), 1, "baseline");
  return t;
}

void expect_matches_baseline(const channel_config& cfg, int nranks,
                             const std::string& tag) {
  const trace t = run_config(cfg, nranks, tag);
  const auto divs = compare(baseline(), t);
  EXPECT_TRUE(divs.empty()) << "decomposition '" << tag
                            << "' diverged from the baseline trace:\n"
                            << describe(divs);
}

// Slab (1 x R): runnable up to min(ny, nz) = 16 ranks on the quickstart
// grid, with and without a pipelined exchange.
TEST(DeterminismDecomp, SlabMatchesBaselineAcrossRankCounts) {
  for (int ranks : {4, 16}) {
    for (int depth : {1, 2}) {
      channel_config cfg = quickstart_config();
      cfg.decomposition = decomposition::slab;
      cfg.pipeline_depth = depth;
      const std::string tag =
          "slab_r" + std::to_string(ranks) + "_d" + std::to_string(depth);
      expect_matches_baseline(cfg, ranks, tag);
      if (::testing::Test::HasFailure()) return;
    }
  }
}

// 2.5D hybrid (c x R/c): the smallest replica count at 4 and 16 ranks,
// plus an explicit larger c.
TEST(DeterminismDecomp, HybridMatchesBaselineAcrossRankCounts) {
  struct Case {
    int ranks, c;
  };
  for (const Case tc : {Case{4, 0}, Case{16, 0}, Case{16, 4}}) {
    channel_config cfg = quickstart_config();
    cfg.decomposition = decomposition::hybrid_25d;
    cfg.replica_c = tc.c;
    const std::string tag =
        "hyb_r" + std::to_string(tc.ranks) + "_c" + std::to_string(tc.c);
    expect_matches_baseline(cfg, tc.ranks, tag);
    if (::testing::Test::HasFailure()) return;
  }
}

// The 64-rank ceiling of the matrix: past the slab limit only the pencil
// and the hybrid are runnable — both must still reproduce the one trace.
TEST(DeterminismDecomp, SixtyFourRanksHybridAndPencilAgree) {
  channel_config hyb = quickstart_config();
  hyb.decomposition = decomposition::hybrid_25d;
  hyb.replica_c = 4;  // 4 x 16: every replica's slab spans the full rows
  expect_matches_baseline(hyb, 64, "hyb_r64_c4");

  channel_config pen = quickstart_config();
  pen.pa = 8;
  pen.pb = 8;
  expect_matches_baseline(pen, 64, "pencil_r64_8x8");
}

// Tuned: whatever layout the measured tuner picks — and its cache replay
// on reconstruction — must reproduce the same bits.
TEST(DeterminismDecomp, TunedColdAndCacheReplayMatchBaseline) {
  const std::string cache = scratch_path("tuned_cache");
  channel_config cfg = quickstart_config();
  cfg.decomposition = decomposition::tuned;
  cfg.tuning_cache = cache;
  expect_matches_baseline(cfg, 4, "tuned_cold");
  expect_matches_baseline(cfg, 4, "tuned_replay");
  std::remove(cache.c_str());
}

}  // namespace
