// Shared helpers of the determinism suite: the quickstart configuration
// every trace is pinned at, scratch-path construction, and sanitizer
// detection (the TSan matrix runs a shortened trace to keep wall time
// bounded; see tests/determinism/CMakeLists.txt).
#pragma once

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "analysis/determinism.hpp"
#include "core/simulation.hpp"

#if defined(__SANITIZE_THREAD__)
#define PCF_UNDER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PCF_UNDER_TSAN 1
#endif
#endif
#ifndef PCF_UNDER_TSAN
#define PCF_UNDER_TSAN 0
#endif

namespace pcf_determinism_test {

/// The quickstart configuration (examples/quickstart.cpp): the grid the
/// golden CRC lineage 0x3fa23d27 is pinned at. Every matrix axis is a
/// variation of this base.
///
/// When PCF_DETERMINISM_TUNED is set (the `determinism-tuned` CMake test
/// preset), every run additionally goes through the transform autotuner
/// against the tuning cache at that path — the first construction seeds
/// the cache, every later one replays it. Bit-identity of the whole suite
/// under this hook is the proof that tuner decisions never change bits.
inline pcf::core::channel_config quickstart_config() {
  pcf::core::channel_config cfg;
  cfg.nx = 16;
  cfg.nz = 16;
  cfg.ny = 33;
  cfg.re_tau = 180.0;
  cfg.dt = 1e-4;
  if (const char* cache = std::getenv("PCF_DETERMINISM_TUNED")) {
    cfg.autotune = true;
    if (*cache) cfg.tuning_cache = cache;
  }
  // The `determinism-pooled` preset: lanes lease from the block pool and
  // analysis::record_trace cycles suspend/resume around every step.
  if (std::getenv("PCF_DETERMINISM_POOLED") != nullptr)
    cfg.pooled_workspace = true;
  return cfg;
}

inline constexpr double kQuickstartPerturbation = 0.1;
inline constexpr std::uint64_t kQuickstartSeed = 1;

/// Per-test scratch file under gtest's temp dir (tests run concurrently
/// under `ctest -j`; the name keys on the running test). Parameterized
/// suite/test names contain '/', which must not become directories.
inline std::string scratch_path(const std::string& tag) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  std::string name = std::string(info->test_suite_name()) + "_" +
                     info->name() + "_" + tag;
  for (char& c : name)
    if (c == '/') c = '_';
  return ::testing::TempDir() + "/pcf_det_" + name;
}

}  // namespace pcf_determinism_test
