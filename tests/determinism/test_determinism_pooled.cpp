// Pooled-workspace axis of the determinism matrix: lanes that lease their
// slabs from the process-wide block pool must be an *addressing* change
// only. A pooled run reproduces the owned trace bit-for-bit, a run that
// suspends (releasing every block) and resumes (onto possibly different
// blocks) before each step reproduces the straight run, interleaved
// simulations recycling each other's blocks stay independent, and a
// checkpoint restores into a suspended simulation through the implicit
// re-lease path. The `determinism-pooled` CMake preset additionally runs
// the whole suite with PCF_DETERMINISM_POOLED=1, which pools every
// configuration of the matrix and cycles suspend/resume inside
// record_trace itself.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "determinism_test_util.hpp"
#include "util/block_pool.hpp"
#include "vmpi/vmpi.hpp"

namespace {

using pcf::block_pool;
using pcf::core::channel_config;
using pcf::core::channel_dns;
using pcf::determinism::compare;
using pcf::determinism::describe;
using pcf::determinism::file_crc32;
using pcf::determinism::fingerprint;
using pcf::determinism::read_trace_csv;
using pcf::determinism::record_trace;
using pcf::determinism::trace;
using pcf::vmpi::communicator;
using pcf::vmpi::run_world;
using namespace pcf_determinism_test;

channel_config pooled_config() {
  auto cfg = quickstart_config();
  cfg.pooled_workspace = true;
  return cfg;
}

channel_config owned_config() {
  auto cfg = quickstart_config();
  cfg.pooled_workspace = false;
  return cfg;
}

constexpr int kSteps = 12;

TEST(DeterminismPooled, PooledTraceMatchesOwnedTrace) {
  const std::string scratch = scratch_path("fp");
  trace owned, pooled;
  run_world(1, [&](communicator& world) {
    channel_dns dns(owned_config(), world);
    dns.initialize(kQuickstartPerturbation, kQuickstartSeed);
    owned = record_trace(dns, kSteps, scratch);
  });
  run_world(1, [&](communicator& world) {
    channel_dns dns(pooled_config(), world);
    dns.initialize(kQuickstartPerturbation, kQuickstartSeed);
    pooled = record_trace(dns, kSteps, scratch);
  });
  std::remove(scratch.c_str());
  const auto divs = compare(owned, pooled);
  EXPECT_TRUE(divs.empty())
      << "pool-leased lanes changed the physics:\n" << describe(divs);
}

TEST(DeterminismPooled, SuspendResumeCyclesMatchStraightRun) {
  const std::string scratch = scratch_path("fp");
  trace straight, cycled;
  run_world(1, [&](communicator& world) {
    channel_dns dns(pooled_config(), world);
    dns.initialize(kQuickstartPerturbation, kQuickstartSeed);
    straight = record_trace(dns, kSteps, scratch);
  });
  run_world(1, [&](communicator& world) {
    channel_dns dns(pooled_config(), world);
    dns.initialize(kQuickstartPerturbation, kQuickstartSeed);
    cycled.steps.push_back(fingerprint(dns, scratch));
    for (int s = 0; s < kSteps; ++s) {
      // Release every leased block, park a squatter on the freed space so
      // the resumed lanes land on *different* blocks, then step.
      dns.suspend();
      EXPECT_TRUE(dns.suspended());
      auto squatter = block_pool::global().acquire(1);
      dns.resume();
      block_pool::global().release(squatter);
      dns.step();
      cycled.steps.push_back(fingerprint(dns, scratch));
    }
  });
  std::remove(scratch.c_str());
  const auto divs = compare(straight, cycled);
  EXPECT_TRUE(divs.empty())
      << "suspend/release/re-lease/resume perturbed the state:\n"
      << describe(divs);
}

// The committed golden lineage (per-step CSV + end-state checkpoint CRC
// 0x3fa23d27) holds through pooled lanes AND a full release/re-lease cycle
// before every one of the 25 steps.
TEST(DeterminismPooled, CycledPooledRunMatchesCommittedGolden) {
  if (PCF_UNDER_TSAN) GTEST_SKIP() << "golden artifacts excluded from the "
                                      "sanitizer matrix (runtime bound)";
  const std::string scratch = scratch_path("fp");
  const std::string ckpt = scratch_path("ckpt");
  constexpr int kGoldenSteps = 25;
  trace t;
  std::uint32_t ckpt_crc = 0;
  run_world(1, [&](communicator& world) {
    channel_dns dns(pooled_config(), world);
    dns.initialize(kQuickstartPerturbation, kQuickstartSeed);
    t.steps.push_back(fingerprint(dns, scratch));
    for (int s = 0; s < kGoldenSteps; ++s) {
      dns.suspend();
      dns.resume();
      dns.step();
      t.steps.push_back(fingerprint(dns, scratch));
    }
    // Save from the suspended state: save_checkpoint reads only owned
    // evolved state and must not need the workspace.
    dns.suspend();
    dns.save_checkpoint(ckpt);
    ckpt_crc = file_crc32(ckpt);
  });
  std::remove(scratch.c_str());
  std::remove(ckpt.c_str());
  EXPECT_EQ(ckpt_crc, 0x3fa23d27u)
      << "pooled+cycled end state diverged from the committed lineage";
  const trace golden = read_trace_csv(
      std::string(PCF_SOURCE_DIR) +
      "/tests/determinism/golden_trace_quickstart.csv");
  const auto divs = compare(golden, t);
  EXPECT_TRUE(divs.empty())
      << "pooled+cycled trace diverged from the committed golden trace:\n"
      << describe(divs);
}

// Several simulations sharing the global pool, suspending and resuming in
// an interleaved round-robin so each one's released blocks are recycled
// into its neighbours' leases: every trace still matches its own straight
// reference, and with at most one simulation resumed at a time the pool
// never holds more than one simulation's workspace plus caches.
TEST(DeterminismPooled, InterleavedSimulationsRecycleBlocksIndependently) {
  constexpr int kSims = 3;
  constexpr int kRounds = 6;
  const std::string scratch = scratch_path("fp");
  trace reference;
  run_world(1, [&](communicator& world) {
    channel_dns dns(pooled_config(), world);
    dns.initialize(kQuickstartPerturbation, kQuickstartSeed);
    reference = record_trace(dns, kRounds, scratch);
  });

  const auto leased0 = block_pool::global().stats().blocks_leased;
  run_world(1, [&](communicator& world) {
    std::vector<trace> traces(kSims);
    std::vector<channel_dns*> sims;
    for (int i = 0; i < kSims; ++i)
      sims.push_back(new channel_dns(pooled_config(), world));
    std::uint64_t one_resumed = 0;
    for (int i = 0; i < kSims; ++i) {
      sims[i]->initialize(kQuickstartPerturbation, kQuickstartSeed);
      traces[i].steps.push_back(fingerprint(*sims[i], scratch));
      sims[i]->suspend();
      one_resumed = std::max(
          one_resumed, block_pool::global().stats().blocks_leased - leased0);
    }
    for (int r = 0; r < kRounds; ++r) {
      for (int i = 0; i < kSims; ++i) {
        sims[i]->resume();
        sims[i]->step();
        traces[i].steps.push_back(fingerprint(*sims[i], scratch));
        sims[i]->suspend();
      }
      // With every simulation suspended, no workspace blocks stay leased
      // beyond what the suite held before this test.
      EXPECT_EQ(block_pool::global().stats().blocks_leased, leased0);
    }
    // One-at-a-time interleaving: the peak lease over the whole sweep is
    // one simulation's footprint, not kSims of them.
    std::uint64_t sweep_peak = 0;
    for (int i = 0; i < kSims; ++i) {
      sims[i]->resume();
      sweep_peak = std::max(
          sweep_peak, block_pool::global().stats().blocks_leased - leased0);
      sims[i]->suspend();
    }
    EXPECT_LE(sweep_peak, one_resumed);
    for (int i = 0; i < kSims; ++i) {
      const auto divs = compare(reference, traces[i]);
      EXPECT_TRUE(divs.empty())
          << "interleaved sim " << i << " diverged:\n" << describe(divs);
    }
    for (auto* s : sims) delete s;
  });
  std::remove(scratch.c_str());
}

// Restoring a checkpoint into a *suspended* simulation exercises the
// implicit-resume path inside load_checkpoint: the restored run continues
// bit-identically with the uninterrupted one.
TEST(DeterminismPooled, CheckpointRestoresIntoSuspendedSimulation) {
  const std::string scratch = scratch_path("fp");
  const std::string ckpt = scratch_path("ckpt");
  constexpr int kHead = 5, kTail = 7;
  trace straight_tail, restored_tail;
  run_world(1, [&](communicator& world) {
    channel_dns dns(pooled_config(), world);
    dns.initialize(kQuickstartPerturbation, kQuickstartSeed);
    for (int s = 0; s < kHead; ++s) dns.step();
    dns.save_checkpoint(ckpt);
    straight_tail = record_trace(dns, kTail, scratch);
  });
  run_world(1, [&](communicator& world) {
    channel_dns dns(pooled_config(), world);
    dns.initialize(kQuickstartPerturbation, kQuickstartSeed);
    dns.suspend();
    ASSERT_TRUE(dns.suspended());
    dns.load_checkpoint(ckpt);  // must implicitly resume and re-lease
    EXPECT_FALSE(dns.suspended());
    restored_tail = record_trace(dns, kTail, scratch);
  });
  std::remove(scratch.c_str());
  std::remove(ckpt.c_str());
  const auto divs = compare(straight_tail, restored_tail);
  EXPECT_TRUE(divs.empty())
      << "restore-into-suspended continuation diverged:\n" << describe(divs);
}

}  // namespace
