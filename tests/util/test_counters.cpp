#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "util/counters.hpp"

namespace {

namespace counters = pcf::counters;

TEST(Counters, AccumulateAndDrain) {
  counters::reset();
  counters::add_flops(100);
  counters::add_read(64);
  counters::add_written(32);
  counters::drain();
  auto t = counters::total();
  EXPECT_EQ(t.flops, 100u);
  EXPECT_EQ(t.bytes_read, 64u);
  EXPECT_EQ(t.bytes_written, 32u);
}

TEST(Counters, ResetZerosEverything) {
  counters::add_flops(5);
  counters::drain();
  counters::reset();
  auto t = counters::total();
  EXPECT_EQ(t.flops, 0u);
  EXPECT_EQ(t.bytes_read, 0u);
}

TEST(Counters, DrainFoldsAllThreads) {
  counters::reset();
  std::vector<std::thread> ts;
  for (int i = 0; i < 4; ++i)
    ts.emplace_back([] { counters::add_flops(10); });
  for (auto& t : ts) t.join();
  counters::add_flops(2);
  counters::drain();
  EXPECT_EQ(counters::total().flops, 42u);
}

TEST(Counters, DrainIsIdempotentUntilNewCounts) {
  counters::reset();
  counters::add_flops(7);
  counters::drain();
  counters::drain();
  EXPECT_EQ(counters::total().flops, 7u);
}

TEST(OpCounts, PlusEqualsAggregates) {
  pcf::op_counts a{1, 2, 3}, b{10, 20, 30};
  a += b;
  EXPECT_EQ(a.flops, 11u);
  EXPECT_EQ(a.bytes_read, 22u);
  EXPECT_EQ(a.bytes_written, 33u);
}

}  // namespace
