// Hierarchical phase timer: tree registration, call counting, parent
// inclusion of children, op-count attribution, and reset.
#include <gtest/gtest.h>

#include <stdexcept>

#include "util/counters.hpp"
#include "util/phase_timer.hpp"

namespace {

using pcf::phase_timer;

TEST(PhaseTimer, TreeDepthsFollowRegistration) {
  phase_timer t(false);
  const auto root = t.add("step");
  const auto child = t.add("nonlinear", root);
  const auto grand = t.add("products", child);
  const auto& p = t.phases();
  EXPECT_EQ(p[static_cast<std::size_t>(root)].depth, 0);
  EXPECT_EQ(p[static_cast<std::size_t>(child)].depth, 1);
  EXPECT_EQ(p[static_cast<std::size_t>(grand)].depth, 2);
  EXPECT_EQ(p[static_cast<std::size_t>(grand)].parent, child);
}

TEST(PhaseTimer, ParentsIncludeChildrenAndCallsCount) {
  phase_timer t(false);
  const auto root = t.add("outer");
  const auto child = t.add("inner", root);
  for (int i = 0; i < 3; ++i) {
    phase_timer::section outer(t, root);
    phase_timer::section inner(t, child);
  }
  const auto& p = t.phases();
  EXPECT_EQ(p[static_cast<std::size_t>(root)].calls, 3);
  EXPECT_EQ(p[static_cast<std::size_t>(child)].calls, 3);
  // The child ran entirely inside the parent's section.
  EXPECT_GE(p[static_cast<std::size_t>(root)].seconds,
            p[static_cast<std::size_t>(child)].seconds);
}

// A thrown stage must not leave the enclosing phases open: the RAII
// sections stop their phases during unwinding, so the step after a
// recovery starts from a balanced timer instead of folding the unwound
// frames into a still-running parent.
TEST(PhaseTimer, SectionsUnwindBalancedOnException) {
  phase_timer t(false);
  const auto root = t.add("step");
  const auto child = t.add("stage", root);
  EXPECT_THROW(
      {
        phase_timer::section step_sec(t, root);
        phase_timer::section stage_sec(t, child);
        throw std::runtime_error("blow-up mid-stage");
      },
      std::runtime_error);
  EXPECT_EQ(t.open_phases(), 0);
  EXPECT_EQ(t.phases()[static_cast<std::size_t>(root)].calls, 1);
  EXPECT_EQ(t.phases()[static_cast<std::size_t>(child)].calls, 1);
  // The post-recovery step times normally on the balanced timer.
  {
    phase_timer::section step_sec(t, root);
    phase_timer::section stage_sec(t, child);
  }
  EXPECT_EQ(t.open_phases(), 0);
  EXPECT_EQ(t.phases()[static_cast<std::size_t>(root)].calls, 2);
  t.reset();  // balanced: the debug assert in reset() must not fire
  EXPECT_EQ(t.phases()[static_cast<std::size_t>(root)].calls, 0);
}

TEST(PhaseTimer, AttributesOpCountsWhenTracking) {
  phase_timer t(true);
  const auto ph = t.add("work");
  {
    phase_timer::section sec(t, ph);
    pcf::counters::add_flops(123);
    pcf::counters::add_read(40);
    pcf::counters::add_written(8);
  }
  const auto& s = t.phases()[static_cast<std::size_t>(ph)];
  EXPECT_EQ(s.ops.flops, 123u);
  EXPECT_EQ(s.ops.bytes_read, 40u);
  EXPECT_EQ(s.ops.bytes_written, 8u);

  t.reset();
  const auto& r = t.phases()[static_cast<std::size_t>(ph)];
  EXPECT_EQ(r.calls, 0);
  EXPECT_EQ(r.seconds, 0.0);
  EXPECT_EQ(r.ops.flops, 0u);
}

}  // namespace
