#include <gtest/gtest.h>

#include <complex>
#include <cstdint>

#include "util/aligned.hpp"

namespace {

using pcf::aligned_buffer;

TEST(AlignedBuffer, DefaultIsEmpty) {
  aligned_buffer<double> b;
  EXPECT_EQ(b.size(), 0u);
  EXPECT_TRUE(b.empty());
}

TEST(AlignedBuffer, DataIsCacheLineAligned) {
  for (std::size_t n : {1u, 3u, 17u, 1000u}) {
    aligned_buffer<double> b(n);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b.data()) % pcf::kAlignment, 0u)
        << "n = " << n;
  }
}

TEST(AlignedBuffer, FillConstructorSetsAllElements) {
  aligned_buffer<double> b(37, 2.5);
  for (double v : b) EXPECT_EQ(v, 2.5);
}

TEST(AlignedBuffer, CopyIsDeep) {
  aligned_buffer<int> a(4, 7);
  aligned_buffer<int> b(a);
  b[2] = -1;
  EXPECT_EQ(a[2], 7);
  EXPECT_EQ(b[2], -1);
  EXPECT_NE(a.data(), b.data());
}

TEST(AlignedBuffer, CopyAssignReplacesContents) {
  aligned_buffer<int> a(4, 7);
  aligned_buffer<int> b(2, 0);
  b = a;
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(b[3], 7);
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  aligned_buffer<double> a(16, 1.0);
  double* p = a.data();
  aligned_buffer<double> b(std::move(a));
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(b.size(), 16u);
}

TEST(AlignedBuffer, ResetDiscardsAndResizes) {
  aligned_buffer<double> b(8, 1.0);
  b.reset(100);
  EXPECT_EQ(b.size(), 100u);
  b.fill(3.0);
  EXPECT_EQ(b[99], 3.0);
}

TEST(AlignedBuffer, SupportsComplex) {
  aligned_buffer<std::complex<double>> b(5, {1.0, -2.0});
  EXPECT_EQ(b[4], (std::complex<double>{1.0, -2.0}));
}

TEST(AlignedBuffer, ZeroSizeResetIsValid) {
  aligned_buffer<double> b(8);
  b.reset(0);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.data(), nullptr);
}

}  // namespace
