// Block-pool invariants: block-granular leases (aligned, rounded up,
// contiguous), recycling across owners through the bitmaps and the
// per-thread caches, segment growth (including dedicated oversize
// segments), gclib-style hole counting, debug poisoning, trim, and the
// telemetry counters the step-timing report surfaces.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <future>
#include <thread>
#include <vector>

#include "util/aligned.hpp"
#include "util/block_pool.hpp"
#include "util/counters.hpp"
#include "util/rng.hpp"

namespace {

using pcf::block_pool;
using pcf::block_pool_config;

block_pool_config small_cfg() {
  block_pool_config c;
  c.block_bytes = 4096;
  c.segment_blocks = 8;
  c.hugepages = false;
  c.thread_cache_blocks = 0;  // exact bitmap accounting by default
  return c;
}

TEST(BlockPool, LeasesAreAlignedAndRoundedUpToBlocks) {
  block_pool pool(small_cfg());
  auto l = pool.acquire(1);
  ASSERT_TRUE(l);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(l.data()) % pcf::kAlignment, 0u);
  EXPECT_EQ(l.bytes(), 4096u);  // rounded up to one whole block
  EXPECT_EQ(l.blocks(), 1u);
  auto l2 = pool.acquire(4096 + 1);
  EXPECT_EQ(l2.bytes(), 2 * 4096u);
  EXPECT_EQ(l2.blocks(), 2u);
  pool.release(l);
  pool.release(l2);
  EXPECT_FALSE(l);  // release empties the handle
  EXPECT_EQ(pool.stats().blocks_leased, 0u);
}

TEST(BlockPool, ZeroByteAcquireIsEmptyAndReleaseOfEmptyIsNoop) {
  block_pool pool(small_cfg());
  auto l = pool.acquire(0);
  EXPECT_FALSE(l);
  EXPECT_EQ(l.bytes(), 0u);
  pool.release(l);  // must not crash or count
  EXPECT_EQ(pool.stats().releases, 0u);
}

TEST(BlockPool, MultiBlockLeaseIsContiguousAndWritable) {
  block_pool pool(small_cfg());
  auto l = pool.acquire(3 * 4096);
  ASSERT_TRUE(l);
  EXPECT_EQ(l.blocks(), 3u);
  // Write every byte: a lease spanning non-adjacent blocks would fault or
  // corrupt the pool's own bookkeeping here.
  std::fill_n(l.data(), l.bytes(), static_cast<unsigned char>(0x5c));
  EXPECT_EQ(l.data()[0], 0x5c);
  EXPECT_EQ(l.data()[l.bytes() - 1], 0x5c);
  pool.release(l);
}

TEST(BlockPool, BlocksRecycleAcrossOwners) {
  block_pool pool(small_cfg());
  auto a = pool.acquire(2 * 4096);
  unsigned char* where = a.data();
  pool.release(a);
  // The "next owner" (same size) lands on the recycled run: with one
  // segment and first-fit, the freed blocks are the lowest free run.
  auto b = pool.acquire(2 * 4096);
  EXPECT_EQ(b.data(), where);
  pool.release(b);
  const auto st = pool.stats();
  EXPECT_EQ(st.leases, 2u);
  EXPECT_EQ(st.releases, 2u);
  EXPECT_EQ(st.blocks_leased, 0u);
  EXPECT_EQ(st.blocks_total, 8u);  // still the one original segment
}

TEST(BlockPool, ThreadCacheServesRepeatLeases) {
  auto cfg = small_cfg();
  cfg.thread_cache_blocks = 16;
  block_pool pool(cfg);
  auto a = pool.acquire(2 * 4096);
  unsigned char* where = a.data();
  pool.release(a);  // parks in this thread's cache
  auto st = pool.stats();
  EXPECT_EQ(st.blocks_cached, 2u);
  auto b = pool.acquire(2 * 4096);  // cache hit, no pool mutex
  EXPECT_EQ(b.data(), where);
  EXPECT_GE(pool.stats().cache_hits, 1u);
  pool.release(b);
  pool.flush_thread_caches();
  st = pool.stats();
  EXPECT_EQ(st.blocks_cached, 0u);
  EXPECT_EQ(st.blocks_leased, 0u);
}

TEST(BlockPool, SegmentGrowthAndDedicatedOversizeSegments) {
  block_pool pool(small_cfg());  // 8 blocks per segment
  std::vector<block_pool::lease> held;
  for (int i = 0; i < 12; ++i) held.push_back(pool.acquire(4096));
  auto st = pool.stats();
  EXPECT_EQ(st.blocks_leased, 12u);
  EXPECT_GE(st.segments, 2u);  // grew past the first segment
  // A lease larger than a whole segment gets its own dedicated segment.
  auto big = pool.acquire(20 * 4096);
  ASSERT_TRUE(big);
  EXPECT_EQ(big.blocks(), 20u);
  std::fill_n(big.data(), big.bytes(), static_cast<unsigned char>(1));
  st = pool.stats();
  EXPECT_EQ(st.blocks_leased, 32u);
  pool.release(big);
  for (auto& l : held) pool.release(l);
  EXPECT_EQ(pool.stats().blocks_leased, 0u);
  // trim unmaps the now fully-free segments.
  pool.trim();
  EXPECT_EQ(pool.stats().blocks_total, 0u);
  EXPECT_EQ(pool.stats().segments, 0u);
}

TEST(BlockPool, HoleCountingPerGclib) {
  block_pool pool(small_cfg());  // caches off: releases hit the bitmaps
  auto a = pool.acquire(4096);
  auto b = pool.acquire(4096);
  auto c = pool.acquire(4096);
  EXPECT_EQ(pool.stats().holes, 0u);
  // Freeing the middle block leaves a free run that ends at a used block:
  // one hole. The trailing free tail of the segment can still grow
  // rightward and must NOT count.
  pool.release(b);
  EXPECT_EQ(pool.stats().holes, 1u);
  // Freeing the head merges nothing (a and b are separated by nothing now;
  // blocks 0-1 free, block 2 used): still exactly one hole.
  pool.release(a);
  EXPECT_EQ(pool.stats().holes, 1u);
  pool.release(c);
  EXPECT_EQ(pool.stats().holes, 0u);
}

TEST(BlockPool, PeakTracksLeasedPlusCachedHighWater) {
  block_pool pool(small_cfg());
  auto a = pool.acquire(3 * 4096);
  auto b = pool.acquire(2 * 4096);
  EXPECT_GE(pool.stats().blocks_peak, 5u);
  pool.release(a);
  pool.release(b);
  EXPECT_GE(pool.stats().blocks_peak, 5u);  // high-water survives release
  EXPECT_EQ(pool.stats().blocks_leased, 0u);
}

TEST(BlockPool, LeaseLatencyAccumulates) {
  block_pool pool(small_cfg());
  auto l = pool.acquire(4096);
  pool.release(l);
  EXPECT_GT(pool.stats().lease_ns, 0u);
  EXPECT_EQ(pool.stats().leases, 1u);
}

TEST(BlockPool, HugepageRequestFallsBackSilently) {
  // Whether or not the host has hugepages configured, acquisition must
  // succeed and the memory must be usable; the only trace of the backing
  // choice is the stats counter.
  auto cfg = small_cfg();
  cfg.hugepages = true;
  block_pool pool(cfg);
  auto l = pool.acquire(6 * 4096);
  ASSERT_TRUE(l);
  std::fill_n(l.data(), l.bytes(), static_cast<unsigned char>(0x77));
  EXPECT_EQ(l.data()[l.bytes() - 1], 0x77);
  const auto st = pool.stats();
  EXPECT_LE(st.hugepage_segments, st.segments);
  pool.release(l);
}

#ifndef NDEBUG
TEST(BlockPool, ReleasedRunsArePoisoned) {
  block_pool pool(small_cfg());  // caches off: release poisons in place
  auto l = pool.acquire(2 * 4096);
  std::fill_n(l.data(), l.bytes(), static_cast<unsigned char>(0));
  unsigned char* p = l.data();
  const std::size_t bytes = l.bytes();
  pool.release(l);
  // The segment is still mapped; the run must read back as 0xAB poison so
  // a stale owner sees garbage, not its old data.
  for (std::size_t i = 0; i < bytes; i += 997) EXPECT_EQ(p[i], 0xAB);
}
#endif

TEST(BlockPool, ConcurrentAcquireReleaseStress) {
  auto cfg = small_cfg();
  cfg.thread_cache_blocks = 8;
  block_pool pool(cfg);
  constexpr int kThreads = 4;
  constexpr int kIters = 400;
  std::vector<std::thread> ts;
  ts.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&pool, t] {
      pcf::rng r(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < kIters; ++i) {
        const auto blocks =
            1 + static_cast<std::size_t>(r.uniform(0.0, 3.0));
        auto l = pool.acquire(blocks * 4096);
        ASSERT_TRUE(l);
        // Touch both ends: overlapping leases would race here under TSan
        // and corrupt the pattern check single-threaded.
        l.data()[0] = static_cast<unsigned char>(t);
        l.data()[l.bytes() - 1] = static_cast<unsigned char>(t);
        EXPECT_EQ(l.data()[0], static_cast<unsigned char>(t));
        pool.release(l);
      }
    });
  }
  for (auto& th : ts) th.join();
  pool.flush_thread_caches();
  const auto st = pool.stats();
  EXPECT_EQ(st.blocks_leased, 0u);
  EXPECT_EQ(st.blocks_cached, 0u);
  EXPECT_EQ(st.leases, static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(st.releases, st.leases);
  pool.trim();
  EXPECT_EQ(pool.stats().blocks_total, 0u);
}

TEST(BlockPool, ThreadExitFlushesCachedRunsBackToPool) {
  auto cfg = small_cfg();
  cfg.thread_cache_blocks = 16;
  block_pool pool(cfg);
  std::thread worker([&pool] {
    auto l = pool.acquire(3 * 4096);
    ASSERT_TRUE(l);
    pool.release(l);  // parks in THIS thread's cache
    EXPECT_EQ(pool.stats().blocks_cached, 3u);
  });
  worker.join();
  // The exit hook must have returned the parked run to the bitmaps: no
  // stranded blocks, and the capacity is reusable without a manual
  // flush_thread_caches().
  const auto st = pool.stats();
  EXPECT_EQ(st.blocks_cached, 0u);
  EXPECT_EQ(st.blocks_leased, 0u);
  EXPECT_EQ(st.exit_flushed_blocks, 3u);
  pool.trim();
  EXPECT_EQ(pool.stats().blocks_total, 0u);
}

TEST(BlockPool, ThreadExitAfterPoolDestructionIsHarmless) {
  std::promise<void> parked, pool_gone;
  std::thread worker;
  {
    auto cfg = small_cfg();
    cfg.thread_cache_blocks = 16;
    block_pool pool(cfg);
    worker = std::thread([&pool, &parked, &pool_gone] {
      auto l = pool.acquire(4096);
      pool.release(l);  // cached on this thread
      parked.set_value();
      pool_gone.get_future().wait();  // outlive the pool
    });
    parked.get_future().wait();
  }  // pool destroyed with the worker's cache still populated
  pool_gone.set_value();
  worker.join();  // exit hook finds no live pool for the id: a no-op
}

// Satellite of the campaign work: many "simulations" time-slicing one
// pool, each cycling suspend (release every lane) / resume (reacquire,
// possibly different blocks) while neighbours do the same — the
// lease/release interleaving the campaign scheduler produces. Must be
// TSan-clean and leave zero stranded blocks.
TEST(BlockPool, InterleavedSuspendResumeCyclesAcrossManyThreads) {
  auto cfg = small_cfg();
  cfg.segment_blocks = 32;
  cfg.thread_cache_blocks = 8;
  block_pool pool(cfg);
  constexpr int kThreads = 8;  // >= 8 concurrent tenants
  constexpr int kCycles = 150;
  std::vector<std::thread> ts;
  ts.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&pool, t] {
      pcf::rng r(static_cast<std::uint64_t>(t) * 7919 + 1);
      // One tenant's workspace: a few lanes of different sizes, resumed
      // and suspended as a unit like field_workspace::reacquire/release.
      constexpr int kLanes = 3;
      block_pool::lease lanes[kLanes];
      for (int c = 0; c < kCycles; ++c) {
        for (int l = 0; l < kLanes; ++l) {
          const auto blocks =
              1 + static_cast<std::size_t>(r.uniform(0.0, 2.0)) +
              static_cast<std::size_t>(l);
          lanes[l] = pool.acquire(blocks * 4096);
          ASSERT_TRUE(lanes[l]);
          lanes[l].data()[0] = static_cast<unsigned char>(t);
          lanes[l].data()[lanes[l].bytes() - 1] =
              static_cast<unsigned char>(t);
        }
        for (int l = 0; l < kLanes; ++l) {
          EXPECT_EQ(lanes[l].data()[0], static_cast<unsigned char>(t));
          EXPECT_EQ(lanes[l].data()[lanes[l].bytes() - 1],
                    static_cast<unsigned char>(t));
        }
        // Suspend in LIFO order, as the workspace arena does.
        for (int l = kLanes - 1; l >= 0; --l) pool.release(lanes[l]);
        if (t == 0 && c % 32 == 31) pool.flush_thread_caches();
      }
    });
  }
  for (auto& th : ts) th.join();
  // Worker-exit hooks + bitmap accounting: nothing leased, nothing
  // stranded in caches, all capacity reclaimable.
  const auto st = pool.stats();
  EXPECT_EQ(st.blocks_leased, 0u);
  EXPECT_EQ(st.blocks_cached, 0u);
  EXPECT_EQ(st.leases, static_cast<std::uint64_t>(kThreads) * kCycles * 3);
  EXPECT_EQ(st.releases, st.leases);
  pool.trim();
  EXPECT_EQ(pool.stats().blocks_total, 0u);
}

TEST(BlockPool, CountersPoolTotalsIncludeLiveAndRetiredPools) {
  const auto before = pcf::counters::pool_totals();
  {
    block_pool pool(small_cfg());
    auto l = pool.acquire(4096);
    pool.release(l);
    const auto live = pcf::counters::pool_totals();
    EXPECT_GE(live.leases, before.leases + 1);
    EXPECT_GE(live.segments, before.segments + 1);
  }
  // The pool is gone; its counters must survive in the retirement
  // accumulator (minus point-in-time gauges like segments).
  const auto after = pcf::counters::pool_totals();
  EXPECT_GE(after.leases, before.leases + 1);
  EXPECT_GE(after.releases, before.releases + 1);
}

}  // namespace
