// Workspace arena invariants: alignment, LIFO scope release, peak
// tracking, fixed capacity (overflow throws instead of growing).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>

#include "util/check.hpp"
#include "util/thread_pool.hpp"
#include "util/workspace.hpp"

namespace {

using pcf::field_workspace;
using pcf::workspace_lane;

TEST(Workspace, BlocksAre64ByteAlignedAndDisjoint) {
  workspace_lane lane;
  lane.reserve_bytes(4096);
  double* a = lane.alloc<double>(10);
  double* b = lane.alloc<double>(10);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % pcf::kAlignment, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % pcf::kAlignment, 0u);
  EXPECT_GE(b, a + 10);  // no overlap
}

TEST(Workspace, ScopeReleasesLifo) {
  workspace_lane lane;
  lane.reserve_bytes(4096);
  double* permanent = lane.alloc<double>(8);
  const std::size_t base = lane.used_bytes();
  double* first = nullptr;
  {
    workspace_lane::scope outer(lane);
    first = lane.alloc<double>(8);
    {
      workspace_lane::scope inner(lane);
      (void)lane.alloc<double>(8);
      EXPECT_GT(lane.used_bytes(), base);
    }
    // Inner scope released; the next checkout reuses its space.
    double* again = lane.alloc<double>(8);
    EXPECT_GT(again, first);
    (void)again;
  }
  EXPECT_EQ(lane.used_bytes(), base);
  // A fresh scope starts where the permanents end.
  workspace_lane::scope scope(lane);
  double* reused = lane.alloc<double>(8);
  EXPECT_EQ(reused, first);
  EXPECT_GT(reused, permanent);
}

TEST(Workspace, PeakTracksHighWaterMark) {
  workspace_lane lane;
  lane.reserve_bytes(4096);
  {
    workspace_lane::scope scope(lane);
    (void)lane.alloc<double>(64);
  }
  EXPECT_EQ(lane.used_bytes(), 0u);
  EXPECT_GE(lane.peak_bytes(), 64 * sizeof(double));
}

TEST(Workspace, OverflowThrowsInsteadOfGrowing) {
  workspace_lane lane;
  lane.reserve_bytes(256);
  EXPECT_THROW((void)lane.alloc<double>(1024), pcf::precondition_error);
  // Lane capacity is fixed once blocks are checked out.
  (void)lane.alloc<double>(4);
  EXPECT_THROW(lane.reserve_bytes(8192), pcf::precondition_error);
}

// Emulates the staged-pipeline checkout pattern with a stage that throws
// mid-step (the CFL blow-up abort path): one shared-lane scope plus one
// scope per pool thread, the thread scopes unwinding on their own worker
// before thread_pool rethrows on the caller. Every lane must come back to
// its permanent watermark with no scopes open, permanents intact, and the
// next "step" must run clean — a leaked scope here would hit the 0xAB
// poison or the overflow check on the post-recovery step.
TEST(Workspace, ThrowingStageUnwindsScopesAndLanesStayUsable) {
  field_workspace::sizes s;
  s.shared_bytes = 4096;
  s.thread_bytes = 4096;
  s.transform_bytes = 0;
  s.num_threads = 2;
  field_workspace ws(s);
  pcf::thread_pool pool(2);

  double* perm = ws.shared().alloc<double>(16);  // permanent checkout
  std::fill_n(perm, 16, 1.5);
  const std::size_t base = ws.shared().used_bytes();

  auto stage = [&](bool fail) {
    workspace_lane::scope shared_scope(ws.shared());
    double* acc = ws.shared().alloc<double>(32);
    std::fill_n(acc, 32, 0.0);
    pool.run_per_thread([&](int tid) {
      auto& lane = ws.thread(static_cast<std::size_t>(tid));
      workspace_lane::scope thread_scope(lane);
      double* line = lane.alloc<double>(64);
      std::fill_n(line, 64, 2.0);
      if (fail) throw std::runtime_error("stage blew up");
    });
  };

  EXPECT_THROW(stage(true), std::runtime_error);
  EXPECT_EQ(ws.shared().used_bytes(), base);
  EXPECT_EQ(ws.shared().live_scopes(), 0);
  for (std::size_t t = 0; t < 2; ++t) {
    EXPECT_EQ(ws.thread(t).used_bytes(), 0u);
    EXPECT_EQ(ws.thread(t).live_scopes(), 0);
  }
  for (int i = 0; i < 16; ++i) EXPECT_EQ(perm[i], 1.5);
  EXPECT_NO_THROW(stage(false));
  EXPECT_EQ(ws.shared().used_bytes(), base);
}

TEST(Workspace, FieldWorkspaceExposesAllLanes) {
  field_workspace::sizes s;
  s.shared_bytes = 1024;
  s.thread_bytes = 512;
  s.transform_bytes = 2048;
  s.num_threads = 3;
  field_workspace ws(s);
  EXPECT_EQ(ws.num_thread_lanes(), 3u);
  EXPECT_EQ(ws.shared().capacity_bytes(), 1024u);
  EXPECT_EQ(ws.transform().capacity_bytes(), 2048u);
  for (std::size_t t = 0; t < 3; ++t)
    EXPECT_EQ(ws.thread(t).capacity_bytes(), 512u);
  EXPECT_EQ(ws.total_bytes(), 1024u + 2048u + 3u * 512u);
}

}  // namespace
