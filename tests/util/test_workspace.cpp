// Workspace arena invariants: alignment, LIFO scope release, peak
// tracking, fixed capacity (overflow throws instead of growing), and the
// pooled lease/release/reacquire cycle (the simulation's suspend path).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <utility>

#include "util/block_pool.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"
#include "util/workspace.hpp"

namespace {

using pcf::block_pool;
using pcf::block_pool_config;
using pcf::field_workspace;
using pcf::workspace_lane;

block_pool_config test_pool_cfg() {
  block_pool_config c;
  c.block_bytes = 4096;
  c.segment_blocks = 8;
  c.hugepages = false;
  c.thread_cache_blocks = 0;
  return c;
}

TEST(Workspace, BlocksAre64ByteAlignedAndDisjoint) {
  workspace_lane lane;
  lane.reserve_bytes(4096);
  double* a = lane.alloc<double>(10);
  double* b = lane.alloc<double>(10);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % pcf::kAlignment, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % pcf::kAlignment, 0u);
  EXPECT_GE(b, a + 10);  // no overlap
}

TEST(Workspace, ScopeReleasesLifo) {
  workspace_lane lane;
  lane.reserve_bytes(4096);
  double* permanent = lane.alloc<double>(8);
  const std::size_t base = lane.used_bytes();
  double* first = nullptr;
  {
    workspace_lane::scope outer(lane);
    first = lane.alloc<double>(8);
    {
      workspace_lane::scope inner(lane);
      (void)lane.alloc<double>(8);
      EXPECT_GT(lane.used_bytes(), base);
    }
    // Inner scope released; the next checkout reuses its space.
    double* again = lane.alloc<double>(8);
    EXPECT_GT(again, first);
    (void)again;
  }
  EXPECT_EQ(lane.used_bytes(), base);
  // A fresh scope starts where the permanents end.
  workspace_lane::scope scope(lane);
  double* reused = lane.alloc<double>(8);
  EXPECT_EQ(reused, first);
  EXPECT_GT(reused, permanent);
}

TEST(Workspace, PeakTracksHighWaterMark) {
  workspace_lane lane;
  lane.reserve_bytes(4096);
  {
    workspace_lane::scope scope(lane);
    (void)lane.alloc<double>(64);
  }
  EXPECT_EQ(lane.used_bytes(), 0u);
  EXPECT_GE(lane.peak_bytes(), 64 * sizeof(double));
}

TEST(Workspace, OverflowThrowsInsteadOfGrowing) {
  workspace_lane lane;
  lane.reserve_bytes(256);
  EXPECT_THROW((void)lane.alloc<double>(1024), pcf::precondition_error);
  // Lane capacity is fixed once blocks are checked out.
  (void)lane.alloc<double>(4);
  EXPECT_THROW(lane.reserve_bytes(8192), pcf::precondition_error);
}

// Regression: the capacity check used to compute `offset + count *
// sizeof(T)`, which wraps for a count near SIZE_MAX and passed the
// comparison vacuously — handing out a pointer with ~0 usable bytes. The
// overflow-safe check must reject every wrapping count.
TEST(Workspace, OverflowCheckRejectsWrappingByteCount) {
  workspace_lane lane;
  lane.reserve_bytes(4096);
  const std::size_t huge = std::numeric_limits<std::size_t>::max() / 8 + 2;
  // huge * sizeof(double) wraps to a small number; the naive check would
  // accept it.
  EXPECT_THROW((void)lane.alloc<double>(huge), pcf::precondition_error);
  EXPECT_THROW(
      (void)lane.alloc<double>(std::numeric_limits<std::size_t>::max()),
      pcf::precondition_error);
  // The lane must still be usable and empty after the rejections.
  EXPECT_EQ(lane.used_bytes(), 0u);
  double* ok = lane.alloc<double>(8);
  EXPECT_NE(ok, nullptr);
}

TEST(Workspace, MovedFromLaneIsEmptyAndReusable) {
  workspace_lane a;
  a.reserve_bytes(1024);
  double* p = a.alloc<double>(4);
  p[0] = 42.0;
  workspace_lane b(std::move(a));
  // The slab (and its contents) moved; the source is empty but alive.
  EXPECT_EQ(b.used_bytes(), 4 * sizeof(double));
  EXPECT_EQ(b.capacity_bytes(), 1024u);
  EXPECT_EQ(a.capacity_bytes(), 0u);
  EXPECT_EQ(a.used_bytes(), 0u);
  // Re-reserving the moved-from lane brings it back into service.
  a.reserve_bytes(512);
  double* q = a.alloc<double>(4);
  q[0] = 7.0;
  EXPECT_EQ(p[0], 42.0);  // b's storage is untouched by a's new slab
  // Move-assign over a live lane releases its old slab first.
  a = std::move(b);
  EXPECT_EQ(a.capacity_bytes(), 1024u);
  EXPECT_EQ(a.used_bytes(), 4 * sizeof(double));
}

TEST(Workspace, PooledMoveTransfersLease) {
  block_pool pool(test_pool_cfg());
  workspace_lane a;
  a.lease_bytes(pool, 100);
  EXPECT_TRUE(a.pooled());
  (void)a.alloc<double>(4);
  workspace_lane b(std::move(a));
  EXPECT_TRUE(b.pooled());
  EXPECT_FALSE(a.pooled());
  EXPECT_EQ(pool.stats().blocks_leased, 1u);  // exactly one live lease
  b.release_slab();
  EXPECT_EQ(pool.stats().blocks_leased, 0u);
}

TEST(Workspace, PooledReacquireReproducesConstructionOffsets) {
  block_pool pool(test_pool_cfg());
  workspace_lane lane;
  lane.lease_bytes(pool, 2 * 4096);
  EXPECT_GE(lane.capacity_bytes(), 2 * 4096u);  // whole-block round-up

  // Permanent checkouts at construction: remember their lane offsets.
  unsigned char* base = reinterpret_cast<unsigned char*>(lane.alloc<char>(1));
  double* perm1 = lane.alloc<double>(10);
  double* perm2 = lane.alloc<double>(3);
  const std::ptrdiff_t off1 =
      reinterpret_cast<unsigned char*>(perm1) - base;
  const std::ptrdiff_t off2 =
      reinterpret_cast<unsigned char*>(perm2) - base;
  const std::size_t used = lane.used_bytes();

  lane.release_slab();
  EXPECT_TRUE(lane.released());
  EXPECT_EQ(lane.used_bytes(), 0u);
  EXPECT_EQ(pool.stats().blocks_leased, 0u);
  // Released lanes are idempotently releasable.
  lane.release_slab();

  // Park a squatter on the freed blocks so the reacquired lease lands
  // somewhere else — the offsets must reproduce anyway.
  auto squatter = pool.acquire(4096);

  lane.reacquire_slab();
  EXPECT_FALSE(lane.released());
  unsigned char* base2 = reinterpret_cast<unsigned char*>(lane.alloc<char>(1));
  double* again1 = lane.alloc<double>(10);
  double* again2 = lane.alloc<double>(3);
  EXPECT_EQ(reinterpret_cast<unsigned char*>(again1) - base2, off1);
  EXPECT_EQ(reinterpret_cast<unsigned char*>(again2) - base2, off2);
  EXPECT_EQ(lane.used_bytes(), used);
  // peak survives the cycle (it sizes future lanes).
  EXPECT_GE(lane.peak_bytes(), used);
  pool.release(squatter);
}

TEST(Workspace, PooledFieldWorkspaceReleaseReacquireCycle) {
  block_pool pool(test_pool_cfg());
  field_workspace::sizes s;
  s.shared_bytes = 4096;
  s.thread_bytes = 4096;
  s.transform_bytes = 8192;
  s.num_threads = 2;
  field_workspace ws(s, &pool);
  EXPECT_TRUE(ws.pooled());
  EXPECT_FALSE(ws.released());
  EXPECT_GT(pool.stats().blocks_leased, 0u);

  double* perm = ws.shared().alloc<double>(8);
  std::fill_n(perm, 8, 1.0);
  {
    workspace_lane::scope sc(ws.shared());
    (void)ws.shared().alloc<double>(16);
  }
  const auto usage_before = ws.usage();

  ws.release();
  EXPECT_TRUE(ws.released());
  EXPECT_EQ(pool.stats().blocks_leased, 0u);

  ws.reacquire();
  EXPECT_FALSE(ws.released());
  double* perm_again = ws.shared().alloc<double>(8);
  EXPECT_NE(perm_again, nullptr);
  // usage() (capacity and peak) survives the cycle.
  const auto usage_after = ws.usage();
  ASSERT_EQ(usage_before.size(), usage_after.size());
  for (std::size_t i = 0; i < usage_before.size(); ++i) {
    EXPECT_EQ(usage_before[i].capacity_bytes, usage_after[i].capacity_bytes);
    EXPECT_LE(usage_before[i].peak_bytes, usage_after[i].peak_bytes);
  }
}

TEST(Workspace, OwnedLanesAlsoSupportReleaseReacquire) {
  // The suspend path must work for owned lanes too (free + realloc), so
  // the pooled determinism hook is safe for every configuration.
  field_workspace::sizes s;
  s.shared_bytes = 2048;
  s.thread_bytes = 1024;
  s.transform_bytes = 4096;
  s.num_threads = 1;
  field_workspace ws(s);
  EXPECT_FALSE(ws.pooled());
  (void)ws.shared().alloc<double>(16);
  ws.release();
  EXPECT_TRUE(ws.released());
  ws.reacquire();
  double* p = ws.shared().alloc<double>(16);
  EXPECT_NE(p, nullptr);
  EXPECT_EQ(ws.shared().capacity_bytes(), 2048u);
}

// Emulates the staged-pipeline checkout pattern with a stage that throws
// mid-step (the CFL blow-up abort path): one shared-lane scope plus one
// scope per pool thread, the thread scopes unwinding on their own worker
// before thread_pool rethrows on the caller. Every lane must come back to
// its permanent watermark with no scopes open, permanents intact, and the
// next "step" must run clean — a leaked scope here would hit the 0xAB
// poison or the overflow check on the post-recovery step.
TEST(Workspace, ThrowingStageUnwindsScopesAndLanesStayUsable) {
  field_workspace::sizes s;
  s.shared_bytes = 4096;
  s.thread_bytes = 4096;
  s.transform_bytes = 0;
  s.num_threads = 2;
  field_workspace ws(s);
  pcf::thread_pool pool(2);

  double* perm = ws.shared().alloc<double>(16);  // permanent checkout
  std::fill_n(perm, 16, 1.5);
  const std::size_t base = ws.shared().used_bytes();

  auto stage = [&](bool fail) {
    workspace_lane::scope shared_scope(ws.shared());
    double* acc = ws.shared().alloc<double>(32);
    std::fill_n(acc, 32, 0.0);
    pool.run_per_thread([&](int tid) {
      auto& lane = ws.thread(static_cast<std::size_t>(tid));
      workspace_lane::scope thread_scope(lane);
      double* line = lane.alloc<double>(64);
      std::fill_n(line, 64, 2.0);
      if (fail) throw std::runtime_error("stage blew up");
    });
  };

  EXPECT_THROW(stage(true), std::runtime_error);
  EXPECT_EQ(ws.shared().used_bytes(), base);
  EXPECT_EQ(ws.shared().live_scopes(), 0);
  for (std::size_t t = 0; t < 2; ++t) {
    EXPECT_EQ(ws.thread(t).used_bytes(), 0u);
    EXPECT_EQ(ws.thread(t).live_scopes(), 0);
  }
  for (int i = 0; i < 16; ++i) EXPECT_EQ(perm[i], 1.5);
  EXPECT_NO_THROW(stage(false));
  EXPECT_EQ(ws.shared().used_bytes(), base);
}

TEST(Workspace, FieldWorkspaceExposesAllLanes) {
  field_workspace::sizes s;
  s.shared_bytes = 1024;
  s.thread_bytes = 512;
  s.transform_bytes = 2048;
  s.num_threads = 3;
  field_workspace ws(s);
  EXPECT_EQ(ws.num_thread_lanes(), 3u);
  EXPECT_EQ(ws.shared().capacity_bytes(), 1024u);
  EXPECT_EQ(ws.transform().capacity_bytes(), 2048u);
  for (std::size_t t = 0; t < 3; ++t)
    EXPECT_EQ(ws.thread(t).capacity_bytes(), 512u);
  EXPECT_EQ(ws.total_bytes(), 1024u + 2048u + 3u * 512u);
}

}  // namespace
