#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace {

using pcf::rng;

TEST(Rng, DeterministicForSameSeed) {
  rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  rng r(7);
  for (int i = 0; i < 10000; ++i) {
    double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  rng r(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  rng r(3);
  for (int i = 0; i < 1000; ++i) {
    double u = r.uniform(-2.0, 5.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  rng r(99);
  const int n = 200000;
  double s1 = 0.0, s2 = 0.0;
  for (int i = 0; i < n; ++i) {
    double x = r.normal();
    s1 += x;
    s2 += x * x;
  }
  EXPECT_NEAR(s1 / n, 0.0, 0.02);
  EXPECT_NEAR(s2 / n, 1.0, 0.02);
}

}  // namespace
