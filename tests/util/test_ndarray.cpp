#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "util/ndarray.hpp"

namespace {

using pcf::view2d;
using pcf::view3d;

TEST(View2D, RowMajorIndexing) {
  std::vector<int> v(6);
  std::iota(v.begin(), v.end(), 0);
  view2d<int> m(v.data(), 2, 3);
  EXPECT_EQ(m(0, 0), 0);
  EXPECT_EQ(m(0, 2), 2);
  EXPECT_EQ(m(1, 0), 3);
  EXPECT_EQ(m(1, 2), 5);
}

TEST(View2D, StridedRows) {
  std::vector<int> v(8);
  std::iota(v.begin(), v.end(), 0);
  view2d<int> m(v.data(), 2, 3, 4);  // padded rows
  EXPECT_EQ(m(0, 2), 2);
  EXPECT_EQ(m(1, 0), 4);
  EXPECT_EQ(m.row(1), v.data() + 4);
}

TEST(View2D, WritesThroughView) {
  std::vector<double> v(4, 0.0);
  view2d<double> m(v.data(), 2, 2);
  m(1, 1) = 9.0;
  EXPECT_EQ(v[3], 9.0);
}

TEST(View3D, RowMajorIndexing) {
  std::vector<int> v(24);
  std::iota(v.begin(), v.end(), 0);
  view3d<int> a(v.data(), 2, 3, 4);
  EXPECT_EQ(a(0, 0, 0), 0);
  EXPECT_EQ(a(0, 0, 3), 3);
  EXPECT_EQ(a(0, 1, 0), 4);
  EXPECT_EQ(a(1, 0, 0), 12);
  EXPECT_EQ(a(1, 2, 3), 23);
}

TEST(View3D, LinePointsToInnermostRun) {
  std::vector<int> v(24);
  std::iota(v.begin(), v.end(), 0);
  view3d<int> a(v.data(), 2, 3, 4);
  const int* line = a.line(1, 2);
  EXPECT_EQ(line, v.data() + 20);
  EXPECT_EQ(line[3], 23);
}

TEST(View3D, SizeAndExtents) {
  view3d<int> a(nullptr, 2, 3, 4);
  EXPECT_EQ(a.extent0(), 2u);
  EXPECT_EQ(a.extent1(), 3u);
  EXPECT_EQ(a.extent2(), 4u);
  EXPECT_EQ(a.size(), 24u);
}

}  // namespace
