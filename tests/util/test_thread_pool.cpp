#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace {

using pcf::thread_pool;

TEST(ThreadPool, SingleThreadRunsWholeRange) {
  thread_pool pool(1);
  std::vector<int> hit(100, 0);
  pool.run(hit.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hit[i]++;
  });
  for (int h : hit) EXPECT_EQ(h, 1);
}

class ThreadPoolP : public ::testing::TestWithParam<int> {};
class ThreadPoolExceptionP : public ::testing::TestWithParam<int> {};

TEST_P(ThreadPoolP, EveryIndexVisitedExactlyOnce) {
  thread_pool pool(GetParam());
  std::vector<std::atomic<int>> hit(1013);
  pool.run(hit.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hit[i].fetch_add(1);
  });
  for (auto& h : hit) EXPECT_EQ(h.load(), 1);
}

TEST_P(ThreadPoolP, RangeSmallerThanThreadCount) {
  thread_pool pool(GetParam());
  std::vector<std::atomic<int>> hit(2);
  pool.run(hit.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hit[i].fetch_add(1);
  });
  EXPECT_EQ(hit[0].load(), 1);
  EXPECT_EQ(hit[1].load(), 1);
}

TEST_P(ThreadPoolP, RepeatedRunsAreIndependent) {
  thread_pool pool(GetParam());
  std::atomic<long> sum{0};
  for (int rep = 0; rep < 20; ++rep) {
    pool.run(64, [&](std::size_t b, std::size_t e) {
      long local = 0;
      for (std::size_t i = b; i < e; ++i) local += static_cast<long>(i);
      sum.fetch_add(local);
    });
  }
  EXPECT_EQ(sum.load(), 20L * (63 * 64 / 2));
}

TEST_P(ThreadPoolP, RunPerThreadTouchesEveryThreadOnce) {
  const int n = GetParam();
  thread_pool pool(n);
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
  pool.run_per_thread([&](int tid) { hits[static_cast<std::size_t>(tid)]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

INSTANTIATE_TEST_SUITE_P(Widths, ThreadPoolP, ::testing::Values(1, 2, 3, 4, 8));

TEST(ThreadPool, ZeroLengthRunIsNoop) {
  thread_pool pool(4);
  bool called = false;
  pool.run(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, RejectsZeroThreads) {
  EXPECT_THROW(thread_pool pool(0), pcf::precondition_error);
}

// An exception escaping a worker thread would std::terminate the process;
// the pool must capture it and rethrow on the calling thread instead.
TEST_P(ThreadPoolExceptionP, WorkerExceptionRethrownOnCaller) {
  thread_pool pool(GetParam());
  const auto n = static_cast<std::size_t>(4 * pool.num_threads());
  EXPECT_THROW(
      pool.run(n,
               [&](std::size_t, std::size_t e) {
                 // The chunk holding the last index throws — for a 1-thread
                 // pool that is the caller's (only) chunk, otherwise the
                 // last worker's.
                 if (e == n) throw std::runtime_error("chunk failed");
               }),
      std::runtime_error);
}

TEST_P(ThreadPoolExceptionP, PoolStaysUsableAfterAChunkThrows) {
  thread_pool pool(GetParam());
  const auto n = static_cast<std::size_t>(8 * pool.num_threads());
  for (int round = 0; round < 3; ++round) {
    EXPECT_THROW(pool.run(n,
                          [&](std::size_t, std::size_t) {
                            throw std::runtime_error("boom");
                          }),
                 std::runtime_error);
    // The next dispatch must run normally on every thread.
    std::vector<std::atomic<int>> hit(n);
    pool.run(n, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) hit[i].fetch_add(1);
    });
    for (auto& h : hit) EXPECT_EQ(h.load(), 1);
  }
}

TEST_P(ThreadPoolExceptionP, CallerChunkExceptionAlsoPropagates) {
  thread_pool pool(GetParam());
  // Thread 0 is the calling thread and owns the first chunk.
  EXPECT_THROW(
      pool.run(static_cast<std::size_t>(pool.num_threads()),
               [&](std::size_t b, std::size_t) {
                 if (b == 0) throw std::logic_error("caller chunk");
               }),
      std::logic_error);
}

TEST_P(ThreadPoolExceptionP, PerThreadExceptionRethrown) {
  thread_pool pool(GetParam());
  EXPECT_THROW(pool.run_per_thread([&](int tid) {
    if (tid == pool.num_threads() - 1)
      throw std::runtime_error("per-thread failure");
  }),
               std::runtime_error);
}

TEST(ThreadPool, FirstExceptionWinsWhenSeveralChunksThrow) {
  thread_pool pool(4);
  try {
    pool.run(8, [&](std::size_t b, std::size_t) {
      throw std::runtime_error("chunk " + std::to_string(b));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()).rfind("chunk ", 0), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, ThreadPoolExceptionP,
                         ::testing::Values(1, 2, 4));

// --- submit-without-join (the facility behind the pencil comm pipeline) ---

TEST(ThreadPoolSubmit, TasksRunFifoWithOneWorker) {
  thread_pool pool(2);  // caller + exactly one worker => FIFO completion
  std::vector<int> order;
  for (int i = 0; i < 16; ++i)
    pool.submit([&order, i] { order.push_back(i); });
  pool.wait_submitted();
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ThreadPoolSubmit, WaitOnTicketSeesThatTasksEffect) {
  thread_pool pool(2);
  std::atomic<int> stage{0};
  const auto t1 = pool.submit([&] { stage.store(1); });
  const auto t2 = pool.submit([&] { stage.store(2); });
  pool.wait_submitted(t1);
  EXPECT_GE(stage.load(), 1);
  pool.wait_submitted(t2);
  EXPECT_EQ(stage.load(), 2);
}

TEST(ThreadPoolSubmit, SingleThreadPoolRunsInline) {
  thread_pool pool(1);
  int x = 0;
  const auto t = pool.submit([&] { x = 42; });
  EXPECT_EQ(x, 42);  // executed before submit returned
  pool.wait_submitted(t);
  EXPECT_EQ(x, 42);
}

TEST(ThreadPoolSubmit, CallerComputesWhileTaskRuns) {
  thread_pool pool(2);
  std::atomic<bool> task_done{false};
  const auto t = pool.submit([&] { task_done.store(true); });
  long sum = 0;  // caller-side "compute" overlapping the task
  for (long i = 0; i < 1000; ++i) sum += i;
  pool.wait_submitted(t);
  EXPECT_TRUE(task_done.load());
  EXPECT_EQ(sum, 999L * 1000 / 2);
}

TEST(ThreadPoolSubmit, ExceptionRethrownAtWaitAndPoolStaysUsable) {
  for (int threads : {1, 2}) {
    thread_pool pool(threads);
    const auto t =
        pool.submit([] { throw std::runtime_error("task failed"); });
    EXPECT_THROW(pool.wait_submitted(t), std::runtime_error);
    std::atomic<int> ran{0};
    pool.submit([&] { ran.fetch_add(1); });
    pool.wait_submitted();
    EXPECT_EQ(ran.load(), 1);
  }
}

TEST(ThreadPoolSubmit, MixesWithForkJoinDispatch) {
  thread_pool pool(4);
  std::atomic<int> async_hits{0};
  for (int round = 0; round < 5; ++round) {
    const auto t = pool.submit([&] { async_hits.fetch_add(1); });
    std::vector<std::atomic<int>> hit(64);
    pool.run(hit.size(), [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) hit[i].fetch_add(1);
    });
    for (auto& h : hit) EXPECT_EQ(h.load(), 1);
    pool.wait_submitted(t);
  }
  EXPECT_EQ(async_hits.load(), 5);
}

TEST(ThreadPoolSubmit, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    thread_pool pool(2);
    for (int i = 0; i < 8; ++i) pool.submit([&ran] { ran.fetch_add(1); });
    // No wait: destruction must still execute everything queued.
  }
  EXPECT_EQ(ran.load(), 8);
}

// --- priority / tenant-fairness / cancellation (the campaign work queue) ---

/// Holds the single worker of a pool(2) inside a task until release(), so
/// everything submitted meanwhile queues up and the scheduling decision is
/// observable in the execution order.
class worker_gate {
 public:
  explicit worker_gate(thread_pool& pool) {
    pool.submit([this] {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return open_; });
    });
  }
  void release() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
};

TEST(ThreadPoolSubmit, HigherPriorityTasksStartFirst) {
  thread_pool pool(2);
  worker_gate gate(pool);
  std::vector<std::string> order;
  auto record = [&order](std::string tag) {
    return [&order, tag] { order.push_back(tag); };
  };
  pool.submit(record("low0"), {.priority = 0});
  pool.submit(record("low1"), {.priority = 0});
  pool.submit(record("high0"), {.priority = 5});
  pool.submit(record("high1"), {.priority = 5});
  gate.release();
  pool.wait_submitted();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], "high0");
  EXPECT_EQ(order[1], "high1");
  EXPECT_EQ(order[2], "low0");
  EXPECT_EQ(order[3], "low1");
}

TEST(ThreadPoolSubmit, TenantsAreServedRoundRobinWithinAPriority) {
  thread_pool pool(2);
  worker_gate gate(pool);
  std::vector<std::string> order;
  auto record = [&order](std::string tag) {
    return [&order, tag] { order.push_back(tag); };
  };
  // Tenant 1 floods the queue before tenant 2 submits anything; fairness
  // must still alternate them instead of draining tenant 1 first.
  for (int i = 0; i < 3; ++i)
    pool.submit(record("a" + std::to_string(i)), {.tenant = 1});
  for (int i = 0; i < 3; ++i)
    pool.submit(record("b" + std::to_string(i)), {.tenant = 2});
  gate.release();
  pool.wait_submitted();
  const std::vector<std::string> want = {"a0", "b0", "a1", "b1", "a2", "b2"};
  EXPECT_EQ(order, want);
}

TEST(ThreadPoolSubmit, PriorityBeatsFairnessAcrossLevels) {
  thread_pool pool(2);
  worker_gate gate(pool);
  std::vector<std::string> order;
  auto record = [&order](std::string tag) {
    return [&order, tag] { order.push_back(tag); };
  };
  pool.submit(record("bg"), {.priority = 0, .tenant = 1});
  pool.submit(record("urgent"), {.priority = 1, .tenant = 2});
  gate.release();
  pool.wait_submitted();
  const std::vector<std::string> want = {"urgent", "bg"};
  EXPECT_EQ(order, want);
}

TEST(ThreadPoolSubmit, CancelTenantDropsOnlyThatTenantsQueuedTasks) {
  thread_pool pool(2);
  worker_gate gate(pool);
  std::atomic<int> ran1{0}, ran2{0};
  for (int i = 0; i < 4; ++i)
    pool.submit([&ran1] { ran1.fetch_add(1); }, {.tenant = 1});
  for (int i = 0; i < 3; ++i)
    pool.submit([&ran2] { ran2.fetch_add(1); }, {.tenant = 2});
  EXPECT_EQ(pool.cancel_tenant(1), 4u);
  EXPECT_EQ(pool.cancel_tenant(1), 0u);  // idempotent once drained
  gate.release();
  pool.wait_submitted();  // must not hang: cancelled tasks count completed
  EXPECT_EQ(ran1.load(), 0);
  EXPECT_EQ(ran2.load(), 3);
}

TEST(ThreadPoolSubmit, DefaultOptionsKeepFifoCompletionWithOneWorker) {
  thread_pool pool(2);
  std::vector<int> order;
  std::mutex mu;
  for (int i = 0; i < 16; ++i)
    pool.submit([&, i] {
      std::lock_guard<std::mutex> lk(mu);
      order.push_back(i);
    });
  pool.wait_submitted();
  std::vector<int> want(16);
  std::iota(want.begin(), want.end(), 0);
  EXPECT_EQ(order, want);
}

}  // namespace
