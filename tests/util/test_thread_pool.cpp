#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace {

using pcf::thread_pool;

TEST(ThreadPool, SingleThreadRunsWholeRange) {
  thread_pool pool(1);
  std::vector<int> hit(100, 0);
  pool.run(hit.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hit[i]++;
  });
  for (int h : hit) EXPECT_EQ(h, 1);
}

class ThreadPoolP : public ::testing::TestWithParam<int> {};
class ThreadPoolExceptionP : public ::testing::TestWithParam<int> {};

TEST_P(ThreadPoolP, EveryIndexVisitedExactlyOnce) {
  thread_pool pool(GetParam());
  std::vector<std::atomic<int>> hit(1013);
  pool.run(hit.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hit[i].fetch_add(1);
  });
  for (auto& h : hit) EXPECT_EQ(h.load(), 1);
}

TEST_P(ThreadPoolP, RangeSmallerThanThreadCount) {
  thread_pool pool(GetParam());
  std::vector<std::atomic<int>> hit(2);
  pool.run(hit.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hit[i].fetch_add(1);
  });
  EXPECT_EQ(hit[0].load(), 1);
  EXPECT_EQ(hit[1].load(), 1);
}

TEST_P(ThreadPoolP, RepeatedRunsAreIndependent) {
  thread_pool pool(GetParam());
  std::atomic<long> sum{0};
  for (int rep = 0; rep < 20; ++rep) {
    pool.run(64, [&](std::size_t b, std::size_t e) {
      long local = 0;
      for (std::size_t i = b; i < e; ++i) local += static_cast<long>(i);
      sum.fetch_add(local);
    });
  }
  EXPECT_EQ(sum.load(), 20L * (63 * 64 / 2));
}

TEST_P(ThreadPoolP, RunPerThreadTouchesEveryThreadOnce) {
  const int n = GetParam();
  thread_pool pool(n);
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
  pool.run_per_thread([&](int tid) { hits[static_cast<std::size_t>(tid)]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

INSTANTIATE_TEST_SUITE_P(Widths, ThreadPoolP, ::testing::Values(1, 2, 3, 4, 8));

TEST(ThreadPool, ZeroLengthRunIsNoop) {
  thread_pool pool(4);
  bool called = false;
  pool.run(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, RejectsZeroThreads) {
  EXPECT_THROW(thread_pool pool(0), pcf::precondition_error);
}

// An exception escaping a worker thread would std::terminate the process;
// the pool must capture it and rethrow on the calling thread instead.
TEST_P(ThreadPoolExceptionP, WorkerExceptionRethrownOnCaller) {
  thread_pool pool(GetParam());
  const auto n = static_cast<std::size_t>(4 * pool.num_threads());
  EXPECT_THROW(
      pool.run(n,
               [&](std::size_t, std::size_t e) {
                 // The chunk holding the last index throws — for a 1-thread
                 // pool that is the caller's (only) chunk, otherwise the
                 // last worker's.
                 if (e == n) throw std::runtime_error("chunk failed");
               }),
      std::runtime_error);
}

TEST_P(ThreadPoolExceptionP, PoolStaysUsableAfterAChunkThrows) {
  thread_pool pool(GetParam());
  const auto n = static_cast<std::size_t>(8 * pool.num_threads());
  for (int round = 0; round < 3; ++round) {
    EXPECT_THROW(pool.run(n,
                          [&](std::size_t, std::size_t) {
                            throw std::runtime_error("boom");
                          }),
                 std::runtime_error);
    // The next dispatch must run normally on every thread.
    std::vector<std::atomic<int>> hit(n);
    pool.run(n, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) hit[i].fetch_add(1);
    });
    for (auto& h : hit) EXPECT_EQ(h.load(), 1);
  }
}

TEST_P(ThreadPoolExceptionP, CallerChunkExceptionAlsoPropagates) {
  thread_pool pool(GetParam());
  // Thread 0 is the calling thread and owns the first chunk.
  EXPECT_THROW(
      pool.run(static_cast<std::size_t>(pool.num_threads()),
               [&](std::size_t b, std::size_t) {
                 if (b == 0) throw std::logic_error("caller chunk");
               }),
      std::logic_error);
}

TEST_P(ThreadPoolExceptionP, PerThreadExceptionRethrown) {
  thread_pool pool(GetParam());
  EXPECT_THROW(pool.run_per_thread([&](int tid) {
    if (tid == pool.num_threads() - 1)
      throw std::runtime_error("per-thread failure");
  }),
               std::runtime_error);
}

TEST(ThreadPool, FirstExceptionWinsWhenSeveralChunksThrow) {
  thread_pool pool(4);
  try {
    pool.run(8, [&](std::size_t b, std::size_t) {
      throw std::runtime_error("chunk " + std::to_string(b));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()).rfind("chunk ", 0), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, ThreadPoolExceptionP,
                         ::testing::Values(1, 2, 4));

}  // namespace
