#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>

#include "util/timer.hpp"

namespace {

using pcf::section_timer;
using pcf::wall_timer;

TEST(WallTimer, MeasuresElapsedTime) {
  wall_timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = t.seconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 2.0);
}

TEST(WallTimer, RestartResets) {
  wall_timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  t.restart();
  EXPECT_LT(t.seconds(), 0.015);
}

TEST(SectionTimer, AccumulatesAcrossIntervals) {
  section_timer t;
  for (int i = 0; i < 3; ++i) {
    t.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    t.stop();
  }
  EXPECT_GE(t.total(), 0.012);
  EXPECT_EQ(t.count(), 3);
}

TEST(SectionTimer, StopWithoutStartIsNoop) {
  section_timer t;
  t.stop();
  EXPECT_EQ(t.total(), 0.0);
  EXPECT_EQ(t.count(), 0);
}

TEST(SectionTimer, DoubleStopCountsOnce) {
  section_timer t;
  t.start();
  t.stop();
  t.stop();
  EXPECT_EQ(t.count(), 1);
}

TEST(SectionTimer, ResetClears) {
  section_timer t;
  t.start();
  t.stop();
  t.reset();
  EXPECT_EQ(t.total(), 0.0);
  EXPECT_EQ(t.count(), 0);
}

TEST(SectionTimer, RaiiSectionStopsOnException) {
  section_timer t;
  EXPECT_THROW(
      {
        section_timer::section sec(t);
        throw std::runtime_error("timed code threw");
      },
      std::runtime_error);
  EXPECT_FALSE(t.running());
  EXPECT_EQ(t.count(), 1);
  {
    section_timer::section sec(t);
  }
  EXPECT_EQ(t.count(), 2);
}

}  // namespace
