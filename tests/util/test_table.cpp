#include <gtest/gtest.h>

#include "util/check.hpp"
#include "util/table.hpp"

namespace {

using pcf::text_table;

TEST(TextTable, RendersHeaderAndRows) {
  text_table t({"Cores", "Time"});
  t.add_row({"128", "5.38"});
  t.add_row({"256", "2.78"});
  std::string s = t.str();
  EXPECT_NE(s.find("Cores"), std::string::npos);
  EXPECT_NE(s.find("5.38"), std::string::npos);
  EXPECT_NE(s.find("256"), std::string::npos);
}

TEST(TextTable, ColumnsAreAligned) {
  text_table t({"A", "B"});
  t.add_row({"x", "1234567"});
  std::string s = t.str();
  // Every line should have the same length (aligned columns).
  std::size_t first_len = s.find('\n');
  std::size_t pos = first_len + 1;
  while (pos < s.size()) {
    std::size_t next = s.find('\n', pos);
    EXPECT_EQ(next - pos, first_len);
    pos = next + 1;
  }
}

TEST(TextTable, RejectsMismatchedRowWidth) {
  text_table t({"A", "B"});
  EXPECT_THROW(t.add_row({"only-one"}), pcf::precondition_error);
}

TEST(TextTable, FormatHelpers) {
  EXPECT_EQ(text_table::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(text_table::fmt_pct(0.805, 1), "80.5%");
  EXPECT_EQ(text_table::fmt_time(2.5), "2.500 s");
  EXPECT_EQ(text_table::fmt_time(0.0025), "2.500 ms");
  EXPECT_EQ(text_table::fmt_time(2.5e-6), "2.500 us");
}

}  // namespace
