#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "util/crc.hpp"

namespace {

TEST(Crc32, MatchesTheStandardCheckValue) {
  // The IEEE CRC-32 check value: crc32("123456789") == 0xCBF43926.
  const char* s = "123456789";
  EXPECT_EQ(pcf::crc32(s, std::strlen(s)), 0xCBF43926u);
}

TEST(Crc32, EmptyBufferIsZero) {
  EXPECT_EQ(pcf::crc32(nullptr, 0), 0u);
}

TEST(Crc32, IncrementalEqualsOneShot) {
  const std::string msg = "the quick brown fox jumps over the lazy dog";
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    std::uint32_t crc = pcf::crc32_init();
    crc = pcf::crc32_update(crc, msg.data(), split);
    crc = pcf::crc32_update(crc, msg.data() + split, msg.size() - split);
    EXPECT_EQ(pcf::crc32_final(crc), pcf::crc32(msg.data(), msg.size()))
        << "split at " << split;
  }
}

TEST(Crc32, DetectsASingleBitFlip) {
  std::string msg = "checkpoint payload bytes";
  const std::uint32_t good = pcf::crc32(msg.data(), msg.size());
  msg[7] = static_cast<char>(msg[7] ^ 1);
  EXPECT_NE(pcf::crc32(msg.data(), msg.size()), good);
}

TEST(Crc32, CombineMatchesConcatenation) {
  const std::string a = "first piece of a scattered file";
  const std::string b = "and the second piece";
  const std::string ab = a + b;
  const std::uint32_t crc_a = pcf::crc32(a.data(), a.size());
  const std::uint32_t crc_b = pcf::crc32(b.data(), b.size());
  EXPECT_EQ(pcf::crc32_combine(crc_a, crc_b, b.size()),
            pcf::crc32(ab.data(), ab.size()));
}

TEST(Crc32, CombineHandlesEmptyAndChainedPieces) {
  const std::string a = "abc", b = "defgh", c = "ijklmnop";
  const std::string abc = a + b + c;
  const std::uint32_t crc_a = pcf::crc32(a.data(), a.size());
  const std::uint32_t crc_b = pcf::crc32(b.data(), b.size());
  const std::uint32_t crc_c = pcf::crc32(c.data(), c.size());
  // Empty second piece is the identity.
  EXPECT_EQ(pcf::crc32_combine(crc_a, pcf::crc32(nullptr, 0), 0), crc_a);
  // Chaining three pieces in order reproduces the whole.
  std::uint32_t crc = pcf::crc32_combine(crc_a, crc_b, b.size());
  crc = pcf::crc32_combine(crc, crc_c, c.size());
  EXPECT_EQ(crc, pcf::crc32(abc.data(), abc.size()));
}

TEST(Crc32, CombineWorksForLargeLengths) {
  // Exercise the O(log len) matrix path with a length that has many bits.
  std::string big(100000, '\0');
  for (std::size_t i = 0; i < big.size(); ++i)
    big[i] = static_cast<char>(i * 131 + 17);
  const std::size_t cut = 12345;
  const std::uint32_t crc_a = pcf::crc32(big.data(), cut);
  const std::uint32_t crc_b = pcf::crc32(big.data() + cut, big.size() - cut);
  EXPECT_EQ(pcf::crc32_combine(crc_a, crc_b, big.size() - cut),
            pcf::crc32(big.data(), big.size()));
}

}  // namespace
