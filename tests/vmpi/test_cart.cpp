#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "vmpi/vmpi.hpp"

namespace {

using pcf::vmpi::cart2d;
using pcf::vmpi::communicator;
using pcf::vmpi::run_world;

class GridShapes : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(GridShapes, CoordinatesAreRowMajor) {
  const auto [pa, pb] = GetParam();
  run_world(pa * pb, [&](communicator& c) {
    cart2d g(c, pa, pb);
    EXPECT_EQ(g.coord_a(), c.rank() / pb);
    EXPECT_EQ(g.coord_b(), c.rank() % pb);
    EXPECT_EQ(g.comm_a().size(), pa);
    EXPECT_EQ(g.comm_b().size(), pb);
    EXPECT_EQ(g.comm_a().rank(), g.coord_a());
    EXPECT_EQ(g.comm_b().rank(), g.coord_b());
  });
}

TEST_P(GridShapes, CommBGroupsContiguousRanks) {
  // The paper's Table 5: CommB should group node-local (contiguous) ranks.
  const auto [pa, pb] = GetParam();
  run_world(pa * pb, [&](communicator& c) {
    cart2d g(c, pa, pb);
    std::vector<int> members(static_cast<std::size_t>(pb), -1);
    const int me = c.rank();
    g.comm_b().allgather(&me, members.data(), 1);
    for (int b = 0; b < pb; ++b)
      EXPECT_EQ(members[static_cast<std::size_t>(b)], g.coord_a() * pb + b);
  });
}

TEST_P(GridShapes, CommAGroupsStridedRanks) {
  const auto [pa, pb] = GetParam();
  run_world(pa * pb, [&](communicator& c) {
    cart2d g(c, pa, pb);
    std::vector<int> members(static_cast<std::size_t>(pa), -1);
    const int me = c.rank();
    g.comm_a().allgather(&me, members.data(), 1);
    for (int a = 0; a < pa; ++a)
      EXPECT_EQ(members[static_cast<std::size_t>(a)], a * pb + g.coord_b());
  });
}

TEST_P(GridShapes, IndependentReductionsPerSubcommunicator) {
  const auto [pa, pb] = GetParam();
  run_world(pa * pb, [&](communicator& c) {
    cart2d g(c, pa, pb);
    const double v = 1.0;
    double sa = 0, sb = 0;
    g.comm_a().allreduce_sum(&v, &sa, 1);
    g.comm_b().allreduce_sum(&v, &sb, 1);
    EXPECT_EQ(sa, static_cast<double>(pa));
    EXPECT_EQ(sb, static_cast<double>(pb));
  });
}

INSTANTIATE_TEST_SUITE_P(Shapes, GridShapes,
                         ::testing::Values(std::make_pair(1, 1),
                                           std::make_pair(1, 4),
                                           std::make_pair(4, 1),
                                           std::make_pair(2, 2),
                                           std::make_pair(2, 4),
                                           std::make_pair(4, 4),
                                           std::make_pair(3, 2)));

TEST(Cart2d, RejectsMismatchedGrid) {
  EXPECT_THROW(run_world(4,
                         [&](communicator& c) {
                           cart2d g(c, 3, 2);
                           (void)g;
                         }),
               pcf::precondition_error);
}

TEST(SplitCartesian, MatchesCart2dLayout) {
  const int pa = 2, pb = 4;
  run_world(pa * pb, [&](communicator& c) {
    auto s = pcf::vmpi::split_cartesian(c, pa, pb);
    EXPECT_EQ(s.coord_a, c.rank() / pb);
    EXPECT_EQ(s.coord_b, c.rank() % pb);
    EXPECT_EQ(s.comm_a.size(), pa);
    EXPECT_EQ(s.comm_b.size(), pb);
    EXPECT_EQ(s.comm_a.rank(), s.coord_a);
    EXPECT_EQ(s.comm_b.rank(), s.coord_b);
    // CommB groups contiguous world ranks, CommA strided ones.
    std::vector<int> members(static_cast<std::size_t>(pb), -1);
    const int me = c.rank();
    s.comm_b.allgather(&me, members.data(), 1);
    for (int b = 0; b < pb; ++b)
      EXPECT_EQ(members[static_cast<std::size_t>(b)], s.coord_a * pb + b);
  });
}

TEST(SplitCartesian, RejectsMismatchedGridBeforeSplitting) {
  // Every rank must see the precondition failure without entering the
  // split rendezvous; with the seed's split-then-validate order this
  // shape would hand out communicators before complaining.
  EXPECT_THROW(run_world(6,
                         [&](communicator& c) {
                           auto s = pcf::vmpi::split_cartesian(c, 4, 2);
                           (void)s;
                         }),
               pcf::precondition_error);
}

TEST(SplitCartesian, StaleSubCommunicatorCollectiveThrows) {
  // Rank 1 releases its CommB handle; rank 0's next collective on that
  // group can never complete, and the liveness guard turns the would-be
  // deadlock into a precondition_error.
  EXPECT_THROW(
      run_world(2,
                [&](communicator& c) {
                  auto s = std::make_optional(
                      pcf::vmpi::split_cartesian(c, 1, 2));
                  if (c.rank() == 1) s.reset();
                  c.barrier();
                  if (c.rank() == 0) s->comm_b.barrier();
                }),
      pcf::precondition_error);
}

TEST(SplitCartesian, LiveHandlesPassTheLivenessGuard) {
  // Extra copies of a handle must not trip the guard, and collectives on
  // fully-live groups keep working.
  run_world(4, [&](communicator& c) {
    auto s = pcf::vmpi::split_cartesian(c, 2, 2);
    communicator copy = s.comm_a;
    const double v = 1.0;
    double sum = 0;
    copy.allreduce_sum(&v, &sum, 1);
    EXPECT_EQ(sum, 2.0);
    s.comm_b.barrier();
  });
}

}  // namespace
