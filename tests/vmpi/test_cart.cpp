#include <gtest/gtest.h>

#include <vector>

#include "vmpi/vmpi.hpp"

namespace {

using pcf::vmpi::cart2d;
using pcf::vmpi::communicator;
using pcf::vmpi::run_world;

class GridShapes : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(GridShapes, CoordinatesAreRowMajor) {
  const auto [pa, pb] = GetParam();
  run_world(pa * pb, [&](communicator& c) {
    cart2d g(c, pa, pb);
    EXPECT_EQ(g.coord_a(), c.rank() / pb);
    EXPECT_EQ(g.coord_b(), c.rank() % pb);
    EXPECT_EQ(g.comm_a().size(), pa);
    EXPECT_EQ(g.comm_b().size(), pb);
    EXPECT_EQ(g.comm_a().rank(), g.coord_a());
    EXPECT_EQ(g.comm_b().rank(), g.coord_b());
  });
}

TEST_P(GridShapes, CommBGroupsContiguousRanks) {
  // The paper's Table 5: CommB should group node-local (contiguous) ranks.
  const auto [pa, pb] = GetParam();
  run_world(pa * pb, [&](communicator& c) {
    cart2d g(c, pa, pb);
    std::vector<int> members(static_cast<std::size_t>(pb), -1);
    const int me = c.rank();
    g.comm_b().allgather(&me, members.data(), 1);
    for (int b = 0; b < pb; ++b)
      EXPECT_EQ(members[static_cast<std::size_t>(b)], g.coord_a() * pb + b);
  });
}

TEST_P(GridShapes, CommAGroupsStridedRanks) {
  const auto [pa, pb] = GetParam();
  run_world(pa * pb, [&](communicator& c) {
    cart2d g(c, pa, pb);
    std::vector<int> members(static_cast<std::size_t>(pa), -1);
    const int me = c.rank();
    g.comm_a().allgather(&me, members.data(), 1);
    for (int a = 0; a < pa; ++a)
      EXPECT_EQ(members[static_cast<std::size_t>(a)], a * pb + g.coord_b());
  });
}

TEST_P(GridShapes, IndependentReductionsPerSubcommunicator) {
  const auto [pa, pb] = GetParam();
  run_world(pa * pb, [&](communicator& c) {
    cart2d g(c, pa, pb);
    const double v = 1.0;
    double sa = 0, sb = 0;
    g.comm_a().allreduce_sum(&v, &sa, 1);
    g.comm_b().allreduce_sum(&v, &sb, 1);
    EXPECT_EQ(sa, static_cast<double>(pa));
    EXPECT_EQ(sb, static_cast<double>(pb));
  });
}

INSTANTIATE_TEST_SUITE_P(Shapes, GridShapes,
                         ::testing::Values(std::make_pair(1, 1),
                                           std::make_pair(1, 4),
                                           std::make_pair(4, 1),
                                           std::make_pair(2, 2),
                                           std::make_pair(2, 4),
                                           std::make_pair(4, 4),
                                           std::make_pair(3, 2)));

TEST(Cart2d, RejectsMismatchedGrid) {
  EXPECT_THROW(run_world(4,
                         [&](communicator& c) {
                           cart2d g(c, 3, 2);
                           (void)g;
                         }),
               pcf::precondition_error);
}

}  // namespace
