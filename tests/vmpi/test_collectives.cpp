#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstdint>
#include <cstring>
#include <numeric>
#include <vector>

#include "vmpi/vmpi.hpp"

namespace {

using pcf::vmpi::communicator;
using pcf::vmpi::run_world;

class WorldSizes : public ::testing::TestWithParam<int> {};

TEST_P(WorldSizes, RanksAreDistinctAndSized) {
  const int p = GetParam();
  std::vector<std::atomic<int>> seen(static_cast<std::size_t>(p));
  run_world(p, [&](communicator& c) {
    EXPECT_EQ(c.size(), p);
    seen[static_cast<std::size_t>(c.rank())].fetch_add(1);
  });
  for (auto& s : seen) EXPECT_EQ(s.load(), 1);
}

TEST_P(WorldSizes, AlltoallPermutesBlocks) {
  const int p = GetParam();
  const std::size_t cnt = 3;
  run_world(p, [&](communicator& c) {
    std::vector<int> send(static_cast<std::size_t>(p) * cnt);
    std::vector<int> recv(send.size(), -1);
    // Block destined for rank r is encoded (me, r, k).
    for (int r = 0; r < p; ++r)
      for (std::size_t k = 0; k < cnt; ++k)
        send[static_cast<std::size_t>(r) * cnt + k] =
            c.rank() * 1000 + r * 10 + static_cast<int>(k);
    c.alltoall(send.data(), recv.data(), cnt);
    for (int r = 0; r < p; ++r)
      for (std::size_t k = 0; k < cnt; ++k)
        EXPECT_EQ(recv[static_cast<std::size_t>(r) * cnt + k],
                  r * 1000 + c.rank() * 10 + static_cast<int>(k));
  });
}

TEST_P(WorldSizes, AlltoallvWithVaryingCounts) {
  const int p = GetParam();
  run_world(p, [&](communicator& c) {
    const int me = c.rank();
    // Rank s sends (s + r + 1) elements to rank r, value = s*100 + r.
    std::vector<std::size_t> scounts(static_cast<std::size_t>(p)),
        sdispls(static_cast<std::size_t>(p)), rcounts(static_cast<std::size_t>(p)),
        rdispls(static_cast<std::size_t>(p));
    std::size_t stot = 0, rtot = 0;
    for (int r = 0; r < p; ++r) {
      scounts[static_cast<std::size_t>(r)] = static_cast<std::size_t>(me + r + 1);
      sdispls[static_cast<std::size_t>(r)] = stot;
      stot += scounts[static_cast<std::size_t>(r)];
      rcounts[static_cast<std::size_t>(r)] = static_cast<std::size_t>(r + me + 1);
      rdispls[static_cast<std::size_t>(r)] = rtot;
      rtot += rcounts[static_cast<std::size_t>(r)];
    }
    std::vector<double> send(stot), recv(rtot, -1.0);
    for (int r = 0; r < p; ++r)
      for (std::size_t k = 0; k < scounts[static_cast<std::size_t>(r)]; ++k)
        send[sdispls[static_cast<std::size_t>(r)] + k] = me * 100.0 + r;
    c.alltoallv(send.data(), scounts.data(), sdispls.data(), recv.data(),
                rcounts.data(), rdispls.data());
    for (int r = 0; r < p; ++r)
      for (std::size_t k = 0; k < rcounts[static_cast<std::size_t>(r)]; ++k)
        EXPECT_EQ(recv[rdispls[static_cast<std::size_t>(r)] + k], r * 100.0 + me);
  });
}

TEST_P(WorldSizes, ExchangeRotation) {
  const int p = GetParam();
  run_world(p, [&](communicator& c) {
    const int me = c.rank();
    const int dest = (me + 1) % p;
    const double payload = 7.0 * me;
    double got = -1.0;
    c.exchange(&payload, 1, dest, &got, 1);
    EXPECT_EQ(got, 7.0 * ((me + p - 1) % p));
  });
}

TEST_P(WorldSizes, AllreduceSumMaxMin) {
  const int p = GetParam();
  run_world(p, [&](communicator& c) {
    const double v = static_cast<double>(c.rank() + 1);
    double s = 0, mx = 0, mn = 0;
    c.allreduce_sum(&v, &s, 1);
    c.allreduce_max(&v, &mx, 1);
    c.allreduce_min(&v, &mn, 1);
    EXPECT_EQ(s, p * (p + 1) / 2.0);
    EXPECT_EQ(mx, static_cast<double>(p));
    EXPECT_EQ(mn, 1.0);
  });
}

// The single-owner gather primitive: OR of one owned word with all-zero
// words from every other rank reproduces the owner's bits exactly —
// including a -0.0 bit pattern, which a floating-point sum would flip to
// +0.0 as soon as a second rank joins.
TEST_P(WorldSizes, AllreduceBitwiseOrIsExactSingleOwnerGather) {
  const int p = GetParam();
  run_world(p, [&](communicator& c) {
    // Slot r is owned by rank r; slot p holds -0.0 owned by rank 0.
    std::vector<std::uint64_t> send(static_cast<std::size_t>(p) + 1, 0);
    send[static_cast<std::size_t>(c.rank())] =
        0xdead0000ull + static_cast<std::uint64_t>(c.rank());
    const double neg_zero = -0.0;
    if (c.rank() == 0) std::memcpy(&send[send.size() - 1], &neg_zero, 8);
    std::vector<std::uint64_t> recv(send.size());
    c.allreduce_bor(send.data(), recv.data(), send.size());
    for (int r = 0; r < p; ++r)
      EXPECT_EQ(recv[static_cast<std::size_t>(r)],
                0xdead0000ull + static_cast<std::uint64_t>(r));
    double back;
    std::memcpy(&back, &recv[recv.size() - 1], 8);
    EXPECT_TRUE(std::signbit(back)) << "gather lost the -0.0 sign bit";
  });
}

TEST_P(WorldSizes, AllreduceComplexSum) {
  const int p = GetParam();
  run_world(p, [&](communicator& c) {
    const std::complex<double> v{1.0, static_cast<double>(c.rank())};
    std::complex<double> s;
    c.allreduce_sum(&v, &s, 1);
    EXPECT_EQ(s.real(), static_cast<double>(p));
    EXPECT_EQ(s.imag(), p * (p - 1) / 2.0);
  });
}

TEST_P(WorldSizes, BcastFromEveryRoot) {
  const int p = GetParam();
  run_world(p, [&](communicator& c) {
    for (int root = 0; root < p; ++root) {
      std::vector<int> data(4, c.rank() == root ? root * 11 : -1);
      c.bcast(data.data(), data.size(), root);
      for (int v : data) EXPECT_EQ(v, root * 11);
    }
  });
}

TEST_P(WorldSizes, AllgatherCollectsInRankOrder) {
  const int p = GetParam();
  run_world(p, [&](communicator& c) {
    const int v = c.rank() * 3;
    std::vector<int> all(static_cast<std::size_t>(p), -1);
    c.allgather(&v, all.data(), 1);
    for (int r = 0; r < p; ++r) EXPECT_EQ(all[static_cast<std::size_t>(r)], 3 * r);
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, WorldSizes, ::testing::Values(1, 2, 3, 4, 8, 16));

TEST(Vmpi, StatsCountTraffic) {
  run_world(4, [&](communicator& c) {
    std::vector<double> s(4, 1.0), r(4);
    c.alltoall(s.data(), r.data(), 1);
    auto st = c.stats();
    EXPECT_EQ(st.alltoall_calls, 1u);
    EXPECT_EQ(st.bytes_sent, 4u * 4u * sizeof(double));
  });
}

TEST(Vmpi, RankExceptionPropagates) {
  EXPECT_THROW(run_world(3,
                         [&](communicator& c) {
                           if (c.rank() == 1)
                             throw std::runtime_error("rank failure");
                           // Other ranks would block here without the
                           // error-release path.
                           c.barrier();
                         }),
               std::runtime_error);
}

TEST(Vmpi, SplitByParity) {
  run_world(6, [&](communicator& c) {
    auto sub = c.split(c.rank() % 2, c.rank());
    EXPECT_EQ(sub.size(), 3);
    EXPECT_EQ(sub.rank(), c.rank() / 2);
    // Reduce within the subgroup: even ranks sum 0+2+4, odd 1+3+5.
    const double v = c.rank();
    double s = 0;
    sub.allreduce_sum(&v, &s, 1);
    EXPECT_EQ(s, c.rank() % 2 == 0 ? 6.0 : 9.0);
  });
}

TEST(Vmpi, SplitHonorsKeyOrdering) {
  run_world(4, [&](communicator& c) {
    // Reverse order by key.
    auto sub = c.split(0, -c.rank());
    EXPECT_EQ(sub.size(), 4);
    EXPECT_EQ(sub.rank(), 3 - c.rank());
  });
}

TEST(Vmpi, NestedSplits) {
  run_world(8, [&](communicator& c) {
    auto half = c.split(c.rank() / 4, c.rank());
    auto quarter = half.split(half.rank() / 2, half.rank());
    EXPECT_EQ(quarter.size(), 2);
    double v = 1.0, s = 0.0;
    quarter.allreduce_sum(&v, &s, 1);
    EXPECT_EQ(s, 2.0);
  });
}

}  // namespace
