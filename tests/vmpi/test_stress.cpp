// Randomized and interleaved stress tests of the virtual-MPI runtime —
// the communication patterns the DNS drives hardest.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "util/rng.hpp"
#include "vmpi/vmpi.hpp"

namespace {

using pcf::vmpi::cart2d;
using pcf::vmpi::communicator;
using pcf::vmpi::run_world;

TEST(VmpiStress, RandomizedAlltoallvRounds) {
  // 40 rounds of alltoallv with pseudo-random (but rank-consistent) counts;
  // every element is tagged with (source, dest, round, index) and verified.
  const int p = 6;
  run_world(p, [&](communicator& c) {
    const int me = c.rank();
    for (int round = 0; round < 40; ++round) {
      auto count_of = [&](int src, int dst) {
        pcf::rng r(static_cast<std::uint64_t>(round) * 1000003 +
                   static_cast<std::uint64_t>(src) * 131 +
                   static_cast<std::uint64_t>(dst));
        return static_cast<std::size_t>(r.next_u64() % 7);
      };
      std::vector<std::size_t> sc(p), sd(p), rc(p), rd(p);
      std::size_t st = 0, rt = 0;
      for (int q = 0; q < p; ++q) {
        sc[static_cast<std::size_t>(q)] = count_of(me, q);
        sd[static_cast<std::size_t>(q)] = st;
        st += sc[static_cast<std::size_t>(q)];
        rc[static_cast<std::size_t>(q)] = count_of(q, me);
        rd[static_cast<std::size_t>(q)] = rt;
        rt += rc[static_cast<std::size_t>(q)];
      }
      std::vector<double> send(std::max<std::size_t>(st, 1));
      std::vector<double> recv(std::max<std::size_t>(rt, 1), -1.0);
      for (int q = 0; q < p; ++q)
        for (std::size_t k = 0; k < sc[static_cast<std::size_t>(q)]; ++k)
          send[sd[static_cast<std::size_t>(q)] + k] =
              me * 1e6 + q * 1e3 + round * 10 + static_cast<double>(k);
      c.alltoallv(send.data(), sc.data(), sd.data(), recv.data(), rc.data(),
                  rd.data());
      for (int q = 0; q < p; ++q)
        for (std::size_t k = 0; k < rc[static_cast<std::size_t>(q)]; ++k)
          ASSERT_EQ(recv[rd[static_cast<std::size_t>(q)] + k],
                    q * 1e6 + me * 1e3 + round * 10 + static_cast<double>(k))
              << "round " << round;
    }
  });
}

TEST(VmpiStress, InterleavedCollectivesOnRowAndColumnComms) {
  // The DNS alternates CommA and CommB collectives; interleave them with
  // world reductions for many iterations.
  run_world(8, [&](communicator& world) {
    cart2d g(world, 4, 2);
    double acc = 0.0;
    for (int it = 0; it < 60; ++it) {
      const double v = world.rank() + it;
      double sa = 0, sb = 0, sw = 0;
      g.comm_a().allreduce_sum(&v, &sa, 1);
      g.comm_b().allreduce_sum(&v, &sb, 1);
      world.allreduce_sum(&v, &sw, 1);
      acc += sa + sb + sw;
      // Expected: comm_a sums ranks with same b over 4 a-coords; comm_b
      // over 2 b-coords; world over all 8.
      const double base = 8.0 * it;
      double ranks_a = 0;
      for (int a = 0; a < 4; ++a) ranks_a += a * 2 + g.coord_b();
      double ranks_b = 0;
      for (int b = 0; b < 2; ++b) ranks_b += g.coord_a() * 2 + b;
      EXPECT_EQ(sa, ranks_a + 4.0 * it);
      EXPECT_EQ(sb, ranks_b + 2.0 * it);
      EXPECT_EQ(sw, 28.0 + base);
    }
    EXPECT_GT(acc, 0.0);
  });
}

TEST(VmpiStress, ManySmallWorldsSequentially) {
  // Launch/teardown robustness: many short-lived worlds.
  for (int it = 0; it < 25; ++it) {
    run_world(3, [&](communicator& c) {
      double v = 1.0, s = 0.0;
      c.allreduce_sum(&v, &s, 1);
      EXPECT_EQ(s, 3.0);
    });
  }
}

TEST(VmpiStress, LargePayloadAlltoall) {
  // Megabyte-scale blocks, checksummed.
  const std::size_t cnt = 1 << 15;
  run_world(4, [&](communicator& c) {
    std::vector<double> send(4 * cnt), recv(4 * cnt);
    for (std::size_t i = 0; i < send.size(); ++i)
      send[i] = c.rank() * 1.0 + static_cast<double>(i) * 1e-9;
    c.alltoall(send.data(), recv.data(), cnt);
    for (int q = 0; q < 4; ++q) {
      const double want0 = q * 1.0 + static_cast<double>(c.rank() * cnt) * 1e-9;
      EXPECT_EQ(recv[static_cast<std::size_t>(q) * cnt], want0);
    }
  });
}

}  // namespace
