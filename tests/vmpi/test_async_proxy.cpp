// async_proxy: the MPI_Ialltoallv/MPI_Wait stand-in. Collectives handed to
// the per-rank progress thread must match up across ranks (FIFO order) and
// produce the same results as blocking calls.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <vector>

#include "vmpi/vmpi.hpp"

namespace {

using pcf::vmpi::async_proxy;
using pcf::vmpi::communicator;
using pcf::vmpi::run_world;

TEST(AsyncProxy, OverlappedAlltoallMatchesBlocking) {
  run_world(4, [](communicator& world) {
    const int p = world.size();
    const int me = world.rank();
    std::vector<double> send1(static_cast<std::size_t>(p));
    std::vector<double> send2(static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) {
      send1[static_cast<std::size_t>(r)] = 100.0 * me + r;
      send2[static_cast<std::size_t>(r)] = -3.0 * me + 7.0 * r;
    }
    std::vector<double> ref1(static_cast<std::size_t>(p));
    std::vector<double> ref2(static_cast<std::size_t>(p));
    world.alltoall(send1.data(), ref1.data(), 1);
    world.alltoall(send2.data(), ref2.data(), 1);

    // Same two collectives through the proxy, started back to back before
    // either is waited on. Every rank starts them in the same order, so
    // the single progress thread keeps them matched across ranks.
    async_proxy proxy;
    std::vector<double> got1(static_cast<std::size_t>(p));
    std::vector<double> got2(static_cast<std::size_t>(p));
    const auto t1 = proxy.start(
        [&] { world.alltoall(send1.data(), got1.data(), 1); });
    const auto t2 = proxy.start(
        [&] { world.alltoall(send2.data(), got2.data(), 1); });
    proxy.wait(t1);
    proxy.wait(t2);
    EXPECT_EQ(got1, ref1);
    EXPECT_EQ(got2, ref2);
  });
}

TEST(AsyncProxy, CallerOverlapsComputeWithCollective) {
  run_world(2, [](communicator& world) {
    async_proxy proxy;
    const int p = world.size();
    std::vector<double> send(static_cast<std::size_t>(p), 1.0 + world.rank());
    std::vector<double> recv(static_cast<std::size_t>(p), 0.0);
    const auto t = proxy.start(
        [&] { world.alltoall(send.data(), recv.data(), 1); });
    // Caller-side work while the exchange is in flight.
    double acc = 0.0;
    for (int i = 0; i < 1000; ++i) acc += 0.5;
    proxy.wait(t);
    EXPECT_EQ(acc, 500.0);
    for (int r = 0; r < p; ++r)
      EXPECT_EQ(recv[static_cast<std::size_t>(r)], 1.0 + r);
  });
}

TEST(AsyncProxy, WaitAllDrainsEverything) {
  run_world(2, [](communicator& world) {
    async_proxy proxy;
    std::atomic<int> done{0};
    for (int i = 0; i < 6; ++i)
      proxy.start([&] {
        world.barrier();
        done.fetch_add(1);
      });
    proxy.wait_all();
    EXPECT_EQ(done.load(), 6);
  });
}

}  // namespace
