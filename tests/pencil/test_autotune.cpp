// The transform autotuner: cache round trips, key discrimination, the
// measure-agree-persist flow, and per-communicator strategy overrides.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "pencil/autotune.hpp"
#include "pencil/pencil.hpp"

namespace {

using pcf::pencil::apply_tuning;
using pcf::pencil::autotune_decomposition;
using pcf::pencil::autotune_transforms;
using pcf::pencil::decomp_tune_report;
using pcf::pencil::decomposition;
using pcf::pencil::exchange_strategy;
using pcf::pencil::find_tuning_entry;
using pcf::pencil::grid;
using pcf::pencil::kernel_config;
using pcf::pencil::load_tuning_cache;
using pcf::pencil::make_tune_key;
using pcf::pencil::parallel_fft;
using pcf::pencil::save_tuning_cache;
using pcf::pencil::tune_choice;
using pcf::pencil::tune_entry;
using pcf::pencil::tune_key;
using pcf::pencil::tune_options;
using pcf::pencil::tune_report;
using pcf::vmpi::cart2d;
using pcf::vmpi::communicator;
using pcf::vmpi::run_world;

std::string cache_path(const std::string& tag) {
  const std::string p = ::testing::TempDir() + "/pcf_tune_" + tag + ".bin";
  std::remove(p.c_str());
  return p;
}

tune_key key_for(std::uint32_t nx) {
  tune_key k;
  k.nx = nx;
  k.ny = 17;
  k.nz = 8;
  k.pa = 2;
  k.pb = 2;
  k.max_batch = 5;
  k.flags = 3;
  return k;
}

TEST(TuningCache, MissingFileIsASilentMiss) {
  std::vector<std::string> warnings;
  const auto entries =
      load_tuning_cache(cache_path("missing"), &warnings);
  EXPECT_TRUE(entries.empty());
  EXPECT_TRUE(warnings.empty());
}

TEST(TuningCache, RoundTripsEntries) {
  const std::string path = cache_path("roundtrip");
  std::vector<tune_entry> in;
  in.push_back({key_for(16),
                {exchange_strategy::pairwise, exchange_strategy::alltoall, 5,
                 2}});
  in.push_back({key_for(32),
                {exchange_strategy::alltoall, exchange_strategy::pairwise, 3,
                 1}});
  save_tuning_cache(path, in);

  std::vector<std::string> warnings;
  const auto out = load_tuning_cache(path, &warnings);
  EXPECT_TRUE(warnings.empty());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].key, in[0].key);
  EXPECT_EQ(out[0].choice, in[0].choice);
  EXPECT_EQ(out[1].key, in[1].key);
  EXPECT_EQ(out[1].choice, in[1].choice);
  std::remove(path.c_str());
}

TEST(TuningCache, LookupDiscriminatesEveryKeyField) {
  std::vector<tune_entry> entries = {{key_for(16), tune_choice{}}};
  EXPECT_NE(find_tuning_entry(entries, key_for(16)), nullptr);
  EXPECT_EQ(find_tuning_entry(entries, key_for(32)), nullptr);
  tune_key k = key_for(16);
  k.pb = 4;
  EXPECT_EQ(find_tuning_entry(entries, k), nullptr);
  k = key_for(16);
  k.flags = 1;  // different kernel flags = different measurement
  EXPECT_EQ(find_tuning_entry(entries, k), nullptr);
  k = key_for(16);
  k.max_batch = 3;
  EXPECT_EQ(find_tuning_entry(entries, k), nullptr);
}

TEST(TuningCache, ApplyTuningMapsEveryChoiceField) {
  kernel_config base;
  base.max_batch = 5;
  const kernel_config k = apply_tuning(
      base,
      {exchange_strategy::pairwise, exchange_strategy::alltoall, 3, 2});
  EXPECT_EQ(k.strategy_a, exchange_strategy::pairwise);
  EXPECT_EQ(k.strategy_b, exchange_strategy::alltoall);
  EXPECT_EQ(k.max_batch, 3);
  EXPECT_EQ(k.pipeline_depth, 2);
}

TEST(KernelConfig, PerCommStrategyOverridesSkipMeasurement) {
  run_world(4, [](communicator& world) {
    cart2d cart(world, 2, 2);
    const grid g{8, 9, 8};
    kernel_config cfg;
    cfg.strategy = exchange_strategy::auto_plan;  // would measure...
    cfg.strategy_a = exchange_strategy::pairwise;  // ...but overrides win
    cfg.strategy_b = exchange_strategy::alltoall;
    parallel_fft pf(g, cart, cfg);
    EXPECT_EQ(pf.strategy_a(), exchange_strategy::pairwise);
    EXPECT_EQ(pf.strategy_b(), exchange_strategy::alltoall);
  });
}

TEST(KernelConfig, GlobalStrategyStillAppliesWithoutOverrides) {
  run_world(4, [](communicator& world) {
    cart2d cart(world, 2, 2);
    const grid g{8, 9, 8};
    kernel_config cfg;
    cfg.strategy = exchange_strategy::pairwise;
    parallel_fft pf(g, cart, cfg);
    EXPECT_EQ(pf.strategy_a(), exchange_strategy::pairwise);
    EXPECT_EQ(pf.strategy_b(), exchange_strategy::pairwise);
  });
}

TEST(Autotune, MeasuresAgreesAndPersists) {
  const std::string path = cache_path("flow");
  run_world(4, [&](communicator& world) {
    cart2d cart(world, 2, 2);
    const grid g{8, 9, 8};
    kernel_config base;
    base.max_batch = 5;
    tune_options opt;
    opt.cache_path = path;
    opt.reps = 1;

    const tune_report cold = autotune_transforms(g, world, cart, base, opt);
    EXPECT_FALSE(cold.from_cache);
    // F in {1, 3, 5} x depth in {1, 2} with depth <= F.
    EXPECT_EQ(cold.measured.size(), 5u);
    EXPECT_GT(cold.per_field_s, 0.0);
    // The argmin includes the per-field baseline, so the winner is never
    // slower than per-field *as measured*.
    EXPECT_LE(cold.chosen_s, cold.per_field_s);
    EXPECT_GE(cold.choice.batch, 1);
    EXPECT_LE(cold.choice.batch, 5);
    EXPECT_GE(cold.choice.pipeline_depth, 1);
    EXPECT_LE(cold.choice.pipeline_depth, cold.choice.batch);
    if (world.rank() == 0) EXPECT_TRUE(cold.stored);

    // Every rank agreed on the same choice.
    double mine[2] = {static_cast<double>(cold.choice.batch),
                      static_cast<double>(cold.choice.pipeline_depth)};
    double mx[2], mn[2];
    world.allreduce_max(mine, mx, 2);
    world.allreduce_min(mine, mn, 2);
    EXPECT_EQ(mx[0], mn[0]);
    EXPECT_EQ(mx[1], mn[1]);

    // Second call hits the cache and returns the identical choice without
    // measuring.
    const tune_report warm = autotune_transforms(g, world, cart, base, opt);
    EXPECT_TRUE(warm.from_cache);
    EXPECT_TRUE(warm.measured.empty());
    EXPECT_EQ(warm.choice, cold.choice);

    // force_retune ignores the hit but still lands on a valid choice.
    tune_options forced = opt;
    forced.force_retune = true;
    const tune_report again =
        autotune_transforms(g, world, cart, base, forced);
    EXPECT_FALSE(again.from_cache);
    EXPECT_EQ(again.measured.size(), 5u);
  });
  std::remove(path.c_str());
}

TEST(Autotune, EmptyCachePathMeasuresAndPersistsNothing) {
  run_world(4, [](communicator& world) {
    cart2d cart(world, 2, 2);
    const grid g{8, 9, 8};
    kernel_config base;
    base.max_batch = 3;
    tune_options opt;  // no cache_path
    opt.reps = 1;
    const tune_report rep = autotune_transforms(g, world, cart, base, opt);
    EXPECT_FALSE(rep.from_cache);
    EXPECT_FALSE(rep.stored);
    // max_batch = 3 prunes the F = 5 candidates.
    EXPECT_EQ(rep.measured.size(), 3u);
    EXPECT_LE(rep.choice.batch, 3);
  });
}

TEST(TuningCache, RoundTripsDecompositionEntries) {
  // v2 payload: decomposition entries carry the layout kind and the
  // resolved process grid alongside the transform fields.
  const std::string path = cache_path("decomp_roundtrip");
  tune_entry e;
  e.key = key_for(16);
  e.key.decomp_kind = static_cast<std::uint32_t>(decomposition::tuned);
  e.key.replica_c = 2;
  e.choice.decomp = decomposition::hybrid_25d;
  e.choice.pa = 2;
  e.choice.pb = 2;
  save_tuning_cache(path, {e});

  std::vector<std::string> warnings;
  const auto out = load_tuning_cache(path, &warnings);
  EXPECT_TRUE(warnings.empty());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].key, e.key);
  EXPECT_EQ(out[0].choice.decomp, decomposition::hybrid_25d);
  EXPECT_EQ(out[0].choice.pa, 2);
  EXPECT_EQ(out[0].choice.pb, 2);

  // The kind is part of the key: a transform entry and a decomposition
  // entry at the same grid never collide.
  EXPECT_EQ(find_tuning_entry(out, key_for(16)), nullptr);
  EXPECT_NE(find_tuning_entry(out, e.key), nullptr);
  std::remove(path.c_str());
}

TEST(AutotuneDecomp, ExplicitLayoutIsPlannedNotMeasured) {
  run_world(4, [](communicator& world) {
    const grid g{8, 9, 8};
    tune_options opt;
    opt.reps = 1;
    const decomp_tune_report rep = autotune_decomposition(
        g, world, decomposition::slab, 0, 0, 0, kernel_config{}, opt);
    EXPECT_EQ(rep.plan.kind, decomposition::slab);
    EXPECT_EQ(rep.plan.pa, 1);
    EXPECT_EQ(rep.plan.pb, 4);
    EXPECT_TRUE(rep.measured.empty());
    EXPECT_FALSE(rep.from_cache);
    EXPECT_FALSE(rep.stored);
  });
}

TEST(AutotuneDecomp, TunedMeasuresPersistsAndReplays) {
  const std::string path = cache_path("decomp_flow");
  run_world(4, [&](communicator& world) {
    const grid g{8, 9, 8};
    kernel_config base;
    base.max_batch = 5;
    tune_options opt;
    opt.cache_path = path;
    opt.reps = 1;

    const decomp_tune_report cold = autotune_decomposition(
        g, world, decomposition::tuned, 2, 2, 0, base, opt);
    EXPECT_FALSE(cold.from_cache);
    // Candidates at 4 ranks on this grid: pencil 2x2, slab 1x4, hybrid
    // 4x1 (the minimal hybrid 2x2 duplicates the configured pencil grid).
    ASSERT_GE(cold.measured.size(), 2u);
    EXPECT_EQ(cold.measured[0].plan.kind, decomposition::pencil2d);
    EXPECT_EQ(cold.plan.pa * cold.plan.pb, 4);
    // Strict-< argmin with pencil first: the chosen layout is never
    // slower than the measured pencil baseline.
    double chosen_s = 0.0, pencil_s = 0.0;
    for (const auto& m : cold.measured) {
      if (m.plan == cold.plan) chosen_s = m.seconds;
      if (m.plan.kind == decomposition::pencil2d) pencil_s = m.seconds;
    }
    EXPECT_GT(pencil_s, 0.0);
    EXPECT_LE(chosen_s, pencil_s);
    if (world.rank() == 0) {
      EXPECT_TRUE(cold.stored);
    }

    // Every rank agreed on the same resolved grid.
    double mine[2] = {static_cast<double>(cold.plan.pa),
                      static_cast<double>(cold.plan.pb)};
    double mx[2], mn[2];
    world.allreduce_max(mine, mx, 2);
    world.allreduce_min(mine, mn, 2);
    EXPECT_EQ(mx[0], mn[0]);
    EXPECT_EQ(mx[1], mn[1]);

    // Warm call replays the persisted winner without re-measuring.
    const decomp_tune_report warm = autotune_decomposition(
        g, world, decomposition::tuned, 2, 2, 0, base, opt);
    EXPECT_TRUE(warm.from_cache);
    EXPECT_TRUE(warm.measured.empty());
    EXPECT_EQ(warm.plan, cold.plan);
  });
  std::remove(path.c_str());
}

TEST(Autotune, TunedConfigConstructsWithoutRemeasuring) {
  const std::string path = cache_path("construct");
  run_world(4, [&](communicator& world) {
    cart2d cart(world, 2, 2);
    const grid g{8, 9, 8};
    kernel_config base;
    base.max_batch = 5;
    tune_options opt;
    opt.cache_path = path;
    opt.reps = 1;
    const tune_report rep = autotune_transforms(g, world, cart, base, opt);
    const kernel_config tuned = apply_tuning(base, rep.choice);
    parallel_fft pf(g, cart, tuned);
    EXPECT_EQ(pf.strategy_a(), rep.choice.strat_a);
    EXPECT_EQ(pf.strategy_b(), rep.choice.strat_b);
    EXPECT_EQ(pf.config().max_batch, rep.choice.batch);
    EXPECT_EQ(pf.config().pipeline_depth, rep.choice.pipeline_depth);
  });
  std::remove(path.c_str());
}

}  // namespace
