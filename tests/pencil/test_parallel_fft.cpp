#include <gtest/gtest.h>

#include <cmath>
#include <mutex>
#include <numbers>
#include <vector>

#include "pencil/pencil.hpp"
#include "util/aligned.hpp"

namespace {

using pcf::aligned_buffer;
using pcf::pencil::cplx;
using pcf::pencil::exchange_strategy;
using pcf::pencil::grid;
using pcf::pencil::kernel_config;
using pcf::pencil::parallel_fft;
using pcf::vmpi::cart2d;
using pcf::vmpi::communicator;
using pcf::vmpi::run_world;

/// Deterministic pseudo-random spectral value.
cplx raw_value(std::size_t x, std::size_t z, std::size_t y) {
  const double a = 0.31 * static_cast<double>(x) +
                   0.73 * static_cast<double>(z) +
                   1.17 * static_cast<double>(y) + 0.5;
  const double b = 0.21 * static_cast<double>(x) -
                   0.43 * static_cast<double>(z) +
                   0.91 * static_cast<double>(y);
  return cplx{std::sin(a), std::cos(b)};
}

/// Spectral value with the conjugate symmetries a real physical field
/// requires: the kx = 0 plane (and the kx Nyquist plane when it is kept)
/// must be Hermitian in kz. With dealiasing the spanwise Nyquist mode is
/// not representable (the kernel drops it), so it is generated as zero.
cplx spec_value(std::size_t xg, std::size_t zg, std::size_t y, const grid& g,
                bool nyquist_kept, bool dealias = true) {
  if (dealias && zg == g.nz / 2) return cplx{0.0, 0.0};
  const bool real_plane =
      (xg == 0) || (nyquist_kept && xg == g.nx / 2);
  if (!real_plane) return raw_value(xg, zg, y);
  const std::size_t zc = (g.nz - zg) % g.nz;
  if (zg == zc) return cplx{raw_value(xg, zg, y).real(), 0.0};
  if (zg < zc) return raw_value(xg, zg, y);
  return std::conj(raw_value(xg, zc, y));
}

struct Case {
  int pa, pb;
  int fft_threads, reorder_threads;
  bool p3dfft;
};

class PfftCases : public ::testing::TestWithParam<Case> {};

TEST_P(PfftCases, SpectralRoundTripIsIdentity) {
  const Case tc = GetParam();
  const grid g{16, 9, 8};
  run_world(tc.pa * tc.pb, [&](communicator& world) {
    cart2d cart(world, tc.pa, tc.pb);
    kernel_config cfg =
        tc.p3dfft ? kernel_config::p3dfft_mode() : kernel_config{};
    cfg.fft_threads = tc.fft_threads;
    cfg.reorder_threads = tc.reorder_threads;
    parallel_fft pf(g, cart, cfg);
    const auto& d = pf.dec();

    aligned_buffer<cplx> spec(d.y_pencil_elems());
    for (std::size_t x = 0; x < d.xs.count; ++x)
      for (std::size_t z = 0; z < d.zs.count; ++z)
        for (std::size_t y = 0; y < g.ny; ++y)
          spec[(x * d.zs.count + z) * g.ny + y] =
              spec_value(d.xs.offset + x, d.zs.offset + z, y, g,
                         !cfg.drop_nyquist, cfg.dealias);

    aligned_buffer<double> phys(d.x_pencil_real_elems());
    aligned_buffer<cplx> back(d.y_pencil_elems());
    pf.to_physical(spec.data(), phys.data());
    pf.to_spectral(phys.data(), back.data());
    for (std::size_t i = 0; i < spec.size(); ++i)
      EXPECT_LT(std::abs(back[i] - spec[i]), 1e-12)
          << "rank " << world.rank() << " elem " << i;
  });
}

TEST_P(PfftCases, PhysicalFieldIsConsistentAcrossDecompositions) {
  const Case tc = GetParam();
  const grid g{16, 5, 8};
  // Serial reference on one rank.
  std::vector<double> ref;
  std::mutex ref_m;
  run_world(1, [&](communicator& world) {
    cart2d cart(world, 1, 1);
    kernel_config cfg =
        tc.p3dfft ? kernel_config::p3dfft_mode() : kernel_config{};
    parallel_fft pf(g, cart, cfg);
    const auto& d = pf.dec();
    aligned_buffer<cplx> spec(d.y_pencil_elems());
    for (std::size_t x = 0; x < d.xs.count; ++x)
      for (std::size_t z = 0; z < d.zs.count; ++z)
        for (std::size_t y = 0; y < g.ny; ++y)
          spec[(x * d.zs.count + z) * g.ny + y] =
              spec_value(x, z, y, g, !cfg.drop_nyquist, cfg.dealias);
    std::vector<double> out(d.x_pencil_real_elems());
    pf.to_physical(spec.data(), out.data());
    std::lock_guard<std::mutex> lk(ref_m);
    ref = std::move(out);
  });

  run_world(tc.pa * tc.pb, [&](communicator& world) {
    cart2d cart(world, tc.pa, tc.pb);
    kernel_config cfg =
        tc.p3dfft ? kernel_config::p3dfft_mode() : kernel_config{};
    cfg.fft_threads = tc.fft_threads;
    cfg.reorder_threads = tc.reorder_threads;
    parallel_fft pf(g, cart, cfg);
    const auto& d = pf.dec();
    aligned_buffer<cplx> spec(d.y_pencil_elems());
    for (std::size_t x = 0; x < d.xs.count; ++x)
      for (std::size_t z = 0; z < d.zs.count; ++z)
        for (std::size_t y = 0; y < g.ny; ++y)
          spec[(x * d.zs.count + z) * g.ny + y] =
              spec_value(d.xs.offset + x, d.zs.offset + z, y, g,
                         !cfg.drop_nyquist, cfg.dealias);
    aligned_buffer<double> phys(d.x_pencil_real_elems());
    pf.to_physical(spec.data(), phys.data());
    // Compare the local block against the serial global field.
    for (std::size_t z = 0; z < d.zp.count; ++z)
      for (std::size_t y = 0; y < d.yb.count; ++y)
        for (std::size_t x = 0; x < d.nxf; ++x) {
          const std::size_t zg = d.zp.offset + z;
          const std::size_t yg = d.yb.offset + y;
          const double want = ref[(zg * g.ny + yg) * d.nxf + x];
          const double got = phys[(z * d.yb.count + y) * d.nxf + x];
          EXPECT_NEAR(got, want, 1e-12)
              << "rank " << world.rank() << " (" << x << "," << yg << ","
              << zg << ")";
        }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Decompositions, PfftCases,
    ::testing::Values(Case{1, 1, 1, 1, false}, Case{2, 2, 1, 1, false},
                      Case{4, 1, 1, 1, false}, Case{1, 4, 1, 1, false},
                      Case{2, 4, 1, 1, false}, Case{3, 2, 1, 1, false},
                      Case{2, 2, 3, 2, false}, Case{1, 1, 1, 1, true},
                      Case{2, 2, 1, 1, true}, Case{4, 2, 1, 1, true}));

TEST(Pfft, SingleModeGivesAnalyticCosine) {
  const grid g{16, 3, 8};
  run_world(4, [&](communicator& world) {
    cart2d cart(world, 2, 2);
    parallel_fft pf(g, cart, kernel_config{});
    const auto& d = pf.dec();
    // u_hat(kx=1, kz=3) = 1 for every y.
    aligned_buffer<cplx> spec(d.y_pencil_elems(), cplx{0, 0});
    for (std::size_t x = 0; x < d.xs.count; ++x)
      for (std::size_t z = 0; z < d.zs.count; ++z)
        if (d.xs.offset + x == 1 && d.zs.offset + z == 3)
          for (std::size_t y = 0; y < g.ny; ++y)
            spec[(x * d.zs.count + z) * g.ny + y] = cplx{1.0, 0.0};
    aligned_buffer<double> phys(d.x_pencil_real_elems());
    pf.to_physical(spec.data(), phys.data());
    const double twopi = 2.0 * std::numbers::pi;
    for (std::size_t z = 0; z < d.zp.count; ++z)
      for (std::size_t y = 0; y < d.yb.count; ++y)
        for (std::size_t x = 0; x < d.nxf; ++x) {
          const double th = twopi * (static_cast<double>(x) / d.nxf +
                                     3.0 * static_cast<double>(d.zp.offset + z) /
                                         d.nzf);
          EXPECT_NEAR(phys[(z * d.yb.count + y) * d.nxf + x],
                      2.0 * std::cos(th), 1e-12);
        }
  });
}

TEST(Pfft, SpanwiseNyquistModeIsDroppedByDealiasing) {
  // A coefficient at kz index nz/2 is not representable on the padded grid
  // (+nz/2 and -nz/2 are distinct there), so the dealiased kernel drops it:
  // the round trip must return zero for it and leave all other modes alone.
  const grid g{8, 3, 8};
  run_world(2, [&](communicator& world) {
    cart2d cart(world, 1, 2);
    parallel_fft pf(g, cart, kernel_config{});
    const auto& d = pf.dec();
    aligned_buffer<cplx> spec(d.y_pencil_elems(), cplx{0, 0});
    for (std::size_t x = 0; x < d.xs.count; ++x)
      for (std::size_t z = 0; z < d.zs.count; ++z)
        for (std::size_t y = 0; y < g.ny; ++y) {
          const std::size_t zg = d.zs.offset + z;
          if (zg == g.nz / 2 || (d.xs.offset + x == 1 && zg == 1))
            spec[(x * d.zs.count + z) * g.ny + y] = cplx{1.0, 0.0};
        }
    aligned_buffer<double> phys(d.x_pencil_real_elems());
    aligned_buffer<cplx> back(d.y_pencil_elems());
    pf.to_physical(spec.data(), phys.data());
    pf.to_spectral(phys.data(), back.data());
    for (std::size_t x = 0; x < d.xs.count; ++x)
      for (std::size_t z = 0; z < d.zs.count; ++z)
        for (std::size_t y = 0; y < g.ny; ++y) {
          const std::size_t zg = d.zs.offset + z;
          const std::size_t i = (x * d.zs.count + z) * g.ny + y;
          const cplx want = (zg == g.nz / 2)
                                ? cplx{0.0, 0.0}
                                : spec[i];
          EXPECT_LT(std::abs(back[i] - want), 1e-12);
        }
  });
}

TEST(Pfft, NegativeSpanwiseModeUsesPaddedTail) {
  const grid g{8, 2, 8};
  run_world(1, [&](communicator& world) {
    cart2d cart(world, 1, 1);
    parallel_fft pf(g, cart, kernel_config{});
    const auto& d = pf.dec();
    // kz = -2 lives at spectral index nz - 2 = 6.
    aligned_buffer<cplx> spec(d.y_pencil_elems(), cplx{0, 0});
    for (std::size_t y = 0; y < g.ny; ++y)
      spec[(1 * d.zs.count + 6) * g.ny + y] = cplx{1.0, 0.0};
    aligned_buffer<double> phys(d.x_pencil_real_elems());
    pf.to_physical(spec.data(), phys.data());
    const double twopi = 2.0 * std::numbers::pi;
    for (std::size_t z = 0; z < d.nzf; ++z)
      for (std::size_t x = 0; x < d.nxf; ++x) {
        const double th = twopi * (static_cast<double>(x) / d.nxf -
                                   2.0 * static_cast<double>(z) / d.nzf);
        EXPECT_NEAR(phys[(z * d.yb.count + 0) * d.nxf + x], 2.0 * std::cos(th),
                    1e-12);
      }
  });
}

TEST(Pfft, PairwiseStrategyMatchesAlltoall) {
  // The planner's two exchange implementations (paper Section 4.3) must be
  // interchangeable: identical results from either.
  const grid g{16, 9, 8};
  std::vector<double> ref;
  for (auto strat : {exchange_strategy::alltoall,
                     exchange_strategy::pairwise}) {
    std::vector<double> got;
    std::mutex m;
    run_world(4, [&](communicator& world) {
      cart2d cart(world, 2, 2);
      kernel_config cfg;
      cfg.strategy = strat;
      parallel_fft pf(g, cart, cfg);
      EXPECT_EQ(pf.strategy_a(), strat);
      EXPECT_EQ(pf.strategy_b(), strat);
      const auto& d = pf.dec();
      aligned_buffer<cplx> spec(d.y_pencil_elems());
      for (std::size_t x = 0; x < d.xs.count; ++x)
        for (std::size_t z = 0; z < d.zs.count; ++z)
          for (std::size_t y = 0; y < g.ny; ++y)
            spec[(x * d.zs.count + z) * g.ny + y] = spec_value(
                d.xs.offset + x, d.zs.offset + z, y, g, false, true);
      aligned_buffer<double> phys(d.x_pencil_real_elems());
      pf.to_physical(spec.data(), phys.data());
      if (world.rank() == 2) {
        std::lock_guard<std::mutex> lk(m);
        got.assign(phys.begin(), phys.end());
      }
    });
    if (ref.empty())
      ref = got;
    else {
      ASSERT_EQ(ref.size(), got.size());
      for (std::size_t i = 0; i < ref.size(); ++i)
        EXPECT_EQ(ref[i], got[i]);
    }
  }
}

TEST(Pfft, AutoPlanPicksAValidStrategyAndWorks) {
  const grid g{16, 8, 8};
  run_world(4, [&](communicator& world) {
    cart2d cart(world, 2, 2);
    kernel_config cfg;
    cfg.strategy = exchange_strategy::auto_plan;
    parallel_fft pf(g, cart, cfg);
    EXPECT_NE(pf.strategy_a(), exchange_strategy::auto_plan);
    EXPECT_NE(pf.strategy_b(), exchange_strategy::auto_plan);
    const auto& d = pf.dec();
    aligned_buffer<cplx> spec(d.y_pencil_elems());
    for (std::size_t x = 0; x < d.xs.count; ++x)
      for (std::size_t z = 0; z < d.zs.count; ++z)
        for (std::size_t y = 0; y < g.ny; ++y)
          spec[(x * d.zs.count + z) * g.ny + y] = spec_value(
              d.xs.offset + x, d.zs.offset + z, y, g, false, true);
    aligned_buffer<double> phys(d.x_pencil_real_elems());
    aligned_buffer<cplx> back(d.y_pencil_elems());
    pf.to_physical(spec.data(), phys.data());
    pf.to_spectral(phys.data(), back.data());
    for (std::size_t i = 0; i < spec.size(); ++i)
      EXPECT_LT(std::abs(back[i] - spec[i]), 1e-12);
  });
}

TEST(Pfft, MoreRanksThanDataInSomeDimension) {
  // ny = 5 over PB = 8: three ranks own zero y rows; nxh = 4 over PA = 1.
  // Empty blocks must flow through the alltoallv machinery unharmed.
  const grid g{8, 5, 8};
  run_world(8, [&](communicator& world) {
    cart2d cart(world, 1, 8);
    parallel_fft pf(g, cart, kernel_config{});
    const auto& d = pf.dec();
    aligned_buffer<cplx> spec(d.y_pencil_elems());
    for (std::size_t x = 0; x < d.xs.count; ++x)
      for (std::size_t z = 0; z < d.zs.count; ++z)
        for (std::size_t y = 0; y < g.ny; ++y)
          spec[(x * d.zs.count + z) * g.ny + y] =
              spec_value(d.xs.offset + x, d.zs.offset + z, y, g, false, true);
    aligned_buffer<double> phys(d.x_pencil_real_elems());
    aligned_buffer<cplx> back(d.y_pencil_elems());
    pf.to_physical(spec.data(), phys.data());
    pf.to_spectral(phys.data(), back.data());
    for (std::size_t i = 0; i < spec.size(); ++i)
      EXPECT_LT(std::abs(back[i] - spec[i]), 1e-12);
  });
}

TEST(Pfft, WorkspaceCustomSmallerThanP3dfft) {
  const grid g{32, 8, 16};
  run_world(1, [&](communicator& world) {
    cart2d cart(world, 1, 1);
    // Match the paper's Table 6 conditions: no dealiasing on either side.
    kernel_config custom_cfg;
    custom_cfg.dealias = false;
    parallel_fft custom(g, cart, custom_cfg);
    parallel_fft p3d(g, cart, kernel_config::p3dfft_mode());
    // The customized kernel ping-pongs two buffers; P3DFFT mode keeps three.
    EXPECT_LT(custom.workspace_bytes(), p3d.workspace_bytes());
    EXPECT_EQ(p3d.workspace_bytes() % 3, 0u);
  });
}

TEST(Pfft, TimersAccumulateAndReset) {
  const grid g{16, 4, 8};
  run_world(1, [&](communicator& world) {
    cart2d cart(world, 1, 1);
    parallel_fft pf(g, cart, kernel_config{});
    const auto& d = pf.dec();
    aligned_buffer<cplx> spec(d.y_pencil_elems(), cplx{0, 0});
    aligned_buffer<double> phys(d.x_pencil_real_elems());
    pf.to_physical(spec.data(), phys.data());
    EXPECT_GT(pf.fft_seconds(), 0.0);
    EXPECT_GT(pf.reorder_seconds(), 0.0);
    EXPECT_GE(pf.comm_seconds(), 0.0);
    pf.reset_timers();
    EXPECT_EQ(pf.fft_seconds(), 0.0);
    EXPECT_EQ(pf.comm_seconds(), 0.0);
  });
}

TEST(Pfft, ThreadedAndSerialBitwiseIdentical) {
  const grid g{16, 7, 8};
  std::vector<double> serial_out, threaded_out;
  for (int threads : {1, 4}) {
    run_world(2, [&](communicator& world) {
      cart2d cart(world, 2, 1);
      kernel_config cfg;
      cfg.fft_threads = threads;
      cfg.reorder_threads = threads;
      parallel_fft pf(g, cart, cfg);
      const auto& d = pf.dec();
      aligned_buffer<cplx> spec(d.y_pencil_elems());
      for (std::size_t x = 0; x < d.xs.count; ++x)
        for (std::size_t z = 0; z < d.zs.count; ++z)
          for (std::size_t y = 0; y < g.ny; ++y)
            spec[(x * d.zs.count + z) * g.ny + y] =
                spec_value(d.xs.offset + x, d.zs.offset + z, y, g, false);
      aligned_buffer<double> phys(d.x_pencil_real_elems());
      pf.to_physical(spec.data(), phys.data());
      if (world.rank() == 0) {
        auto& out = threads == 1 ? serial_out : threaded_out;
        out.assign(phys.begin(), phys.end());
      }
    });
  }
  ASSERT_EQ(serial_out.size(), threaded_out.size());
  for (std::size_t i = 0; i < serial_out.size(); ++i)
    EXPECT_EQ(serial_out[i], threaded_out[i]);
}

}  // namespace
