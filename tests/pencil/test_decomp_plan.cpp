// Decomposition planning (pencil2d / slab / 2.5D hybrid) and the
// cross-layout bit-identity property: every runnable layout of the same
// grid must produce the SAME bits — the skipped exchanges of the slab and
// hybrid paths are pure buffer forwards, never a different computation.
// The property runs on a smooth grid and on a Bluestein grid (nzf = 111 =
// 3 x 37, not FFT-smooth) so the non-power-of-two kernels are covered.
#include <gtest/gtest.h>

#include <cmath>
#include <mutex>
#include <vector>

#include "fft/fft.hpp"
#include "pencil/decomp.hpp"
#include "pencil/pencil.hpp"
#include "util/aligned.hpp"
#include "util/check.hpp"

namespace {

using pcf::aligned_buffer;
using pcf::pencil::cplx;
using pcf::pencil::decomp_plan;
using pcf::pencil::decomposition;
using pcf::pencil::grid;
using pcf::pencil::kernel_config;
using pcf::pencil::parallel_fft;
using pcf::vmpi::cart2d;
using pcf::vmpi::communicator;
using pcf::vmpi::run_world;

// --- planning ------------------------------------------------------------

TEST(DecompPlan, SlabValidWhileEveryRankOwnsARow) {
  const grid g{16, 9, 74};  // min(ny, nz) = 9
  EXPECT_TRUE(pcf::pencil::slab_ranks_valid(g, 9));
  EXPECT_FALSE(pcf::pencil::slab_ranks_valid(g, 10));
  EXPECT_TRUE(pcf::pencil::slab_ranks_valid(g, 1));
}

TEST(DecompPlan, HybridValidityNeedsDivisorAndNonemptyBlocks) {
  const grid g{16, 9, 74};
  EXPECT_TRUE(pcf::pencil::hybrid_ranks_valid(g, 8, 2));   // 2 x 4
  EXPECT_FALSE(pcf::pencil::hybrid_ranks_valid(g, 8, 3));  // not a divisor
  EXPECT_FALSE(pcf::pencil::hybrid_ranks_valid(g, 8, 1));  // c >= 2
  // ranks / c = 10 > min(ny, nz) = 9: each replica's slab would be empty.
  EXPECT_FALSE(pcf::pencil::hybrid_ranks_valid(g, 20, 2));
  EXPECT_TRUE(pcf::pencil::hybrid_ranks_valid(g, 20, 4));  // 4 x 5
}

TEST(DecompPlan, DefaultReplicaIsTheSmallestValid) {
  const grid g{16, 9, 74};
  EXPECT_EQ(pcf::pencil::default_replica_c(g, 8), 2);
  EXPECT_EQ(pcf::pencil::default_replica_c(g, 20), 4);  // 2 leaves empty rows
  EXPECT_EQ(pcf::pencil::default_replica_c(g, 7), 7);   // prime: only 7 x 1
  // A rank count nothing divides into valid blocks.
  EXPECT_EQ(pcf::pencil::default_replica_c(grid{8, 3, 8}, 13), 0);
}

TEST(DecompPlan, PlansResolveToConcreteGrids) {
  const grid g{16, 9, 74};
  const auto slab =
      pcf::pencil::plan_decomposition(decomposition::slab, g, 8, 0, 0, 0);
  EXPECT_EQ(slab.pa, 1);
  EXPECT_EQ(slab.pb, 8);
  EXPECT_EQ(slab.exchange_stages(), 1);

  const auto hyb = pcf::pencil::plan_decomposition(decomposition::hybrid_25d,
                                                   g, 8, 0, 0, 0);
  EXPECT_EQ(hyb.pa, 2);
  EXPECT_EQ(hyb.pb, 4);
  EXPECT_EQ(hyb.replica_c, 2);
  EXPECT_EQ(hyb.exchange_stages(), 2);

  const auto pen = pcf::pencil::plan_decomposition(decomposition::pencil2d,
                                                   g, 8, 4, 2, 0);
  EXPECT_EQ(pen.pa, 4);
  EXPECT_EQ(pen.pb, 2);
}

TEST(DecompPlan, UnrunnableLayoutsThrow) {
  const grid g{16, 9, 74};
  EXPECT_THROW((void)pcf::pencil::plan_decomposition(decomposition::slab, g,
                                                     10, 0, 0, 0),
               pcf::precondition_error);
  EXPECT_THROW((void)pcf::pencil::plan_decomposition(
                   decomposition::hybrid_25d, g, 20, 0, 0, 2),
               pcf::precondition_error);
  // `tuned` is not a runnable layout; the autotuner resolves it.
  EXPECT_THROW((void)pcf::pencil::plan_decomposition(decomposition::tuned, g,
                                                     8, 4, 2, 0),
               pcf::precondition_error);
}

TEST(DecompPlan, CandidatesStartWithPencilAndNeverRepeatAGrid) {
  const grid g{16, 9, 74};
  const auto cands = pcf::pencil::decomposition_candidates(g, 8, 4, 2);
  ASSERT_GE(cands.size(), 3u);
  EXPECT_EQ(cands[0].kind, decomposition::pencil2d);
  EXPECT_EQ(cands[0].pa, 4);
  EXPECT_EQ(cands[0].pb, 2);
  for (std::size_t i = 0; i < cands.size(); ++i)
    for (std::size_t k = i + 1; k < cands.size(); ++k)
      EXPECT_FALSE(cands[i].pa == cands[k].pa && cands[i].pb == cands[k].pb)
          << i << " vs " << k;
  for (const auto& c : cands) EXPECT_EQ(c.pa * c.pb, 8);
}

// --- cross-layout bit-identity -------------------------------------------

/// Globally assembled transform results of one layout: the physical field
/// after to_physical and the spectral field after the full round trip.
struct global_fields {
  std::vector<double> phys;
  std::vector<cplx> back;
};

/// Deterministic spectral input with the conjugate symmetry a real field
/// needs (kx = 0 plane Hermitian in kz; the dropped spanwise Nyquist and
/// kx Nyquist are zero).
cplx spec_value(std::size_t xg, std::size_t zg, std::size_t y,
                const grid& g) {
  if (zg == g.nz / 2) return cplx{0.0, 0.0};
  auto raw = [](std::size_t x, std::size_t z, std::size_t yy) {
    const double a = 0.37 * static_cast<double>(x) +
                     0.61 * static_cast<double>(z) +
                     1.03 * static_cast<double>(yy) + 0.25;
    return cplx{std::sin(a), std::cos(1.7 * a)};
  };
  if (xg != 0) return raw(xg, zg, y);
  const std::size_t zc = (g.nz - zg) % g.nz;
  if (zg == zc) return cplx{raw(xg, zg, y).real(), 0.0};
  if (zg < zc) return raw(xg, zg, y);
  return std::conj(raw(xg, zc, y));
}

global_fields run_layout(const decomp_plan& p, const grid& g) {
  global_fields out;
  std::mutex m;
  run_world(p.pa * p.pb, [&](communicator& world) {
    cart2d cart(world, p.pa, p.pb);
    parallel_fft pf(g, cart, kernel_config{});
    const auto& d = pf.dec();

    aligned_buffer<cplx> spec(d.y_pencil_elems());
    for (std::size_t x = 0; x < d.xs.count; ++x)
      for (std::size_t z = 0; z < d.zs.count; ++z)
        for (std::size_t y = 0; y < g.ny; ++y)
          spec[(x * d.zs.count + z) * g.ny + y] =
              spec_value(d.xs.offset + x, d.zs.offset + z, y, g);

    aligned_buffer<double> phys(d.x_pencil_real_elems());
    aligned_buffer<cplx> back(d.y_pencil_elems());
    pf.to_physical(spec.data(), phys.data());
    pf.to_spectral(phys.data(), back.data());

    std::lock_guard<std::mutex> lk(m);
    out.phys.resize(d.nzf * g.ny * d.nxf);
    out.back.resize((g.nx / 2) * g.nz * g.ny);
    for (std::size_t z = 0; z < d.zp.count; ++z)
      for (std::size_t y = 0; y < d.yb.count; ++y)
        for (std::size_t x = 0; x < d.nxf; ++x)
          out.phys[((d.zp.offset + z) * g.ny + (d.yb.offset + y)) * d.nxf +
                   x] = phys[(z * d.yb.count + y) * d.nxf + x];
    for (std::size_t x = 0; x < d.xs.count; ++x)
      for (std::size_t z = 0; z < d.zs.count; ++z)
        for (std::size_t y = 0; y < g.ny; ++y)
          out.back[((d.xs.offset + x) * g.nz + (d.zs.offset + z)) * g.ny +
                   y] = back[(x * d.zs.count + z) * g.ny + y];
  });
  return out;
}

void expect_layouts_bit_identical(const grid& g, int ranks) {
  const auto cands =
      pcf::pencil::decomposition_candidates(g, ranks, ranks / 2, 2);
  ASSERT_GE(cands.size(), 3u);  // pencil, slab, at least one hybrid
  bool saw_slab = false, saw_hybrid = false;
  const global_fields ref = run_layout(cands[0], g);
  for (std::size_t i = 1; i < cands.size(); ++i) {
    const auto& c = cands[i];
    saw_slab = saw_slab || c.kind == decomposition::slab;
    saw_hybrid = saw_hybrid || c.kind == decomposition::hybrid_25d;
    const global_fields got = run_layout(c, g);
    ASSERT_EQ(got.phys.size(), ref.phys.size());
    ASSERT_EQ(got.back.size(), ref.back.size());
    for (std::size_t k = 0; k < ref.phys.size(); ++k)
      ASSERT_EQ(got.phys[k], ref.phys[k])
          << pcf::pencil::to_string(c.kind) << " phys elem " << k;
    for (std::size_t k = 0; k < ref.back.size(); ++k)
      ASSERT_EQ(got.back[k], ref.back[k])
          << pcf::pencil::to_string(c.kind) << " spectral elem " << k;
  }
  EXPECT_TRUE(saw_slab);
  EXPECT_TRUE(saw_hybrid);
}

TEST(DecompBitIdentity, SmoothGridAllLayoutsMatchPencil) {
  expect_layouts_bit_identical(grid{16, 9, 8}, 8);
}

TEST(DecompBitIdentity, BluesteinGridAllLayoutsMatchPencil) {
  // nz = 74 dealiases to nzf = 111 = 3 x 37 — not FFT-smooth, so the
  // padded-z transforms go through the Bluestein kernel on every layout.
  const grid g{16, 9, 74};
  run_world(1, [&](communicator& world) {
    cart2d cart(world, 1, 1);
    parallel_fft pf(g, cart, kernel_config{});
    ASSERT_EQ(pf.dec().nzf, 111u);
  });
  ASSERT_FALSE(pcf::fft::is_smooth(111));
  expect_layouts_bit_identical(g, 8);
}

}  // namespace
