// Batched multi-field transforms: bit-identity against the per-field path
// across modes, pool widths, batch sizes and pipelining, plus the exchange
// aggregation the batching exists for.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "pencil/pencil.hpp"
#include "util/aligned.hpp"

namespace {

using pcf::aligned_buffer;
using pcf::pencil::cplx;
using pcf::pencil::exchange_strategy;
using pcf::pencil::grid;
using pcf::pencil::kernel_config;
using pcf::pencil::parallel_fft;
using pcf::vmpi::cart2d;
using pcf::vmpi::communicator;
using pcf::vmpi::run_world;

cplx raw_value(std::size_t x, std::size_t z, std::size_t y) {
  const double a = 0.31 * static_cast<double>(x) +
                   0.73 * static_cast<double>(z) +
                   1.17 * static_cast<double>(y) + 0.5;
  const double b = 0.21 * static_cast<double>(x) -
                   0.43 * static_cast<double>(z) +
                   0.91 * static_cast<double>(y);
  return cplx{std::sin(a), std::cos(b)};
}

/// Per-field spectral value with the conjugate symmetries a real physical
/// field requires (field index folded into y so the fields differ).
cplx spec_value(std::size_t f, std::size_t xg, std::size_t zg, std::size_t y,
                const grid& g, bool nyquist_kept, bool dealias) {
  y += 11 * f;
  if (dealias && zg == g.nz / 2) return cplx{0.0, 0.0};
  const bool real_plane = (xg == 0) || (nyquist_kept && xg == g.nx / 2);
  if (!real_plane) return raw_value(xg, zg, y);
  const std::size_t zc = (g.nz - zg) % g.nz;
  if (zg == zc) return cplx{raw_value(xg, zg, y).real(), 0.0};
  if (zg < zc) return raw_value(xg, zg, y);
  return std::conj(raw_value(xg, zc, y));
}

struct BCase {
  int pa, pb;
  int fft_threads, reorder_threads;
  bool p3dfft;
  int max_batch, pipeline_depth;
};

class BatchedCases : public ::testing::TestWithParam<BCase> {};

// The acceptance property: for F in {1, 3, 5}, one batched round trip is
// bit-identical (EXPECT_EQ, no tolerance) to F independent per-field round
// trips on the same instance.
TEST_P(BatchedCases, BitIdenticalToPerFieldRoundTrips) {
  const BCase tc = GetParam();
  const grid g{16, 9, 8};
  for (std::size_t F : {std::size_t{1}, std::size_t{3}, std::size_t{5}}) {
    run_world(tc.pa * tc.pb, [&](communicator& world) {
      cart2d cart(world, tc.pa, tc.pb);
      kernel_config cfg =
          tc.p3dfft ? kernel_config::p3dfft_mode() : kernel_config{};
      cfg.fft_threads = tc.fft_threads;
      cfg.reorder_threads = tc.reorder_threads;
      cfg.max_batch = tc.max_batch;
      cfg.pipeline_depth = tc.pipeline_depth;
      parallel_fft pf(g, cart, cfg);
      const auto& d = pf.dec();

      std::vector<aligned_buffer<cplx>> spec(F);
      std::vector<aligned_buffer<double>> phys_ref(F), phys_bat(F);
      std::vector<aligned_buffer<cplx>> back_ref(F), back_bat(F);
      for (std::size_t f = 0; f < F; ++f) {
        spec[f].reset(d.y_pencil_elems());
        for (std::size_t x = 0; x < d.xs.count; ++x)
          for (std::size_t z = 0; z < d.zs.count; ++z)
            for (std::size_t y = 0; y < g.ny; ++y)
              spec[f][(x * d.zs.count + z) * g.ny + y] =
                  spec_value(f, d.xs.offset + x, d.zs.offset + z, y, g,
                             !cfg.drop_nyquist, cfg.dealias);
        phys_ref[f].reset(d.x_pencil_real_elems());
        phys_bat[f].reset(d.x_pencil_real_elems());
        back_ref[f].reset(d.y_pencil_elems());
        back_bat[f].reset(d.y_pencil_elems());
      }

      // Per-field reference (the nf == 1 path is the seed kernel).
      for (std::size_t f = 0; f < F; ++f) {
        pf.to_physical(spec[f].data(), phys_ref[f].data());
        pf.to_spectral(phys_ref[f].data(), back_ref[f].data());
      }

      // Batched round trip.
      std::vector<const cplx*> sp(F);
      std::vector<double*> ph(F);
      for (std::size_t f = 0; f < F; ++f) {
        sp[f] = spec[f].data();
        ph[f] = phys_bat[f].data();
      }
      pf.to_physical_batch(sp.data(), ph.data(), F);
      std::vector<const double*> pc(F);
      std::vector<cplx*> bk(F);
      for (std::size_t f = 0; f < F; ++f) {
        pc[f] = phys_bat[f].data();
        bk[f] = back_bat[f].data();
      }
      pf.to_spectral_batch(pc.data(), bk.data(), F);

      for (std::size_t f = 0; f < F; ++f) {
        for (std::size_t i = 0; i < phys_ref[f].size(); ++i)
          ASSERT_EQ(phys_bat[f][i], phys_ref[f][i])
              << "rank " << world.rank() << " field " << f << " phys " << i
              << " F=" << F;
        for (std::size_t i = 0; i < back_ref[f].size(); ++i)
          ASSERT_EQ(back_bat[f][i], back_ref[f][i])
              << "rank " << world.rank() << " field " << f << " spec " << i
              << " F=" << F;
      }
    });
  }
}

INSTANTIATE_TEST_SUITE_P(
    Modes, BatchedCases,
    ::testing::Values(
        // plain batched: serial, parallel, threaded pools, P3DFFT mode
        BCase{1, 1, 1, 1, false, 5, 1}, BCase{2, 2, 1, 1, false, 5, 1},
        BCase{2, 2, 3, 2, false, 5, 1}, BCase{2, 2, 1, 1, true, 5, 1},
        BCase{4, 1, 1, 1, true, 5, 1},
        // chunked: max_batch below the widest F
        BCase{2, 2, 1, 1, false, 2, 1}, BCase{1, 4, 1, 1, false, 3, 1},
        BCase{2, 1, 1, 1, false, 1, 1},
        // pipelined: depth 2/3, threaded pools, P3DFFT mode, chunk+pipeline
        BCase{2, 2, 1, 1, false, 5, 2}, BCase{2, 2, 1, 1, false, 5, 3},
        BCase{2, 2, 3, 2, false, 5, 3}, BCase{2, 2, 1, 1, true, 5, 2},
        BCase{3, 2, 1, 1, false, 2, 2}, BCase{1, 1, 1, 1, false, 5, 2}));

TEST(PfftBatch, PairwiseStrategyBatchesIdentically) {
  const grid g{16, 7, 8};
  for (std::size_t F : {std::size_t{3}}) {
    run_world(4, [&](communicator& world) {
      cart2d cart(world, 2, 2);
      std::vector<std::vector<double>> outs;
      for (auto strat :
           {exchange_strategy::alltoall, exchange_strategy::pairwise}) {
        kernel_config cfg;
        cfg.strategy = strat;
        cfg.max_batch = static_cast<int>(F);
        parallel_fft pf(g, cart, cfg);
        const auto& d = pf.dec();
        std::vector<aligned_buffer<cplx>> spec(F);
        std::vector<aligned_buffer<double>> phys(F);
        std::vector<const cplx*> sp(F);
        std::vector<double*> ph(F);
        for (std::size_t f = 0; f < F; ++f) {
          spec[f].reset(d.y_pencil_elems());
          phys[f].reset(d.x_pencil_real_elems());
          for (std::size_t x = 0; x < d.xs.count; ++x)
            for (std::size_t z = 0; z < d.zs.count; ++z)
              for (std::size_t y = 0; y < g.ny; ++y)
                spec[f][(x * d.zs.count + z) * g.ny + y] = spec_value(
                    f, d.xs.offset + x, d.zs.offset + z, y, g, false, true);
          sp[f] = spec[f].data();
          ph[f] = phys[f].data();
        }
        pf.to_physical_batch(sp.data(), ph.data(), F);
        std::vector<double> all;
        for (std::size_t f = 0; f < F; ++f)
          all.insert(all.end(), phys[f].begin(), phys[f].end());
        outs.push_back(std::move(all));
      }
      ASSERT_EQ(outs[0].size(), outs[1].size());
      for (std::size_t i = 0; i < outs[0].size(); ++i)
        ASSERT_EQ(outs[0][i], outs[1][i]) << "rank " << world.rank();
    });
  }
}

// The point of the batching: all F fields ride ONE exchange per transpose
// stage, visible both in the vmpi per-communicator call counts and in the
// kernel's own batch statistics.
TEST(PfftBatch, AggregatesExchangesAcrossFields) {
  const grid g{16, 8, 8};
  run_world(4, [&](communicator& world) {
    cart2d cart(world, 2, 2);
    kernel_config cfg;
    cfg.max_batch = 5;
    parallel_fft pf(g, cart, cfg);
    const auto& d = pf.dec();

    std::vector<aligned_buffer<cplx>> spec(5);
    std::vector<aligned_buffer<double>> phys(5);
    std::vector<const cplx*> sp3(3);
    std::vector<double*> ph3(3);
    std::vector<const double*> pc5(5);
    std::vector<cplx*> bk5(5);
    std::vector<aligned_buffer<cplx>> back(5);
    for (std::size_t f = 0; f < 5; ++f) {
      spec[f].reset(d.y_pencil_elems());
      phys[f].reset(d.x_pencil_real_elems());
      phys[f].fill(0.0);
      back[f].reset(d.y_pencil_elems());
      for (std::size_t x = 0; x < d.xs.count; ++x)
        for (std::size_t z = 0; z < d.zs.count; ++z)
          for (std::size_t y = 0; y < g.ny; ++y)
            spec[f][(x * d.zs.count + z) * g.ny + y] = spec_value(
                f, d.xs.offset + x, d.zs.offset + z, y, g, false, true);
      pc5[f] = phys[f].data();
      bk5[f] = back[f].data();
    }
    for (std::size_t f = 0; f < 3; ++f) {
      sp3[f] = spec[f].data();
      ph3[f] = phys[f].data();
    }

    const auto a0 = cart.comm_a().stats();
    const auto b0 = cart.comm_b().stats();
    // The RK3 substage pattern: 3 fields down, 5 fields up — was 8 round
    // trips (16 alltoallv calls), is now 2 batched ones (4 calls).
    pf.to_physical_batch(sp3.data(), ph3.data(), 3);
    pf.to_spectral_batch(pc5.data(), bk5.data(), 5);
    const auto a1 = cart.comm_a().stats();
    const auto b1 = cart.comm_b().stats();
    EXPECT_EQ(a1.alltoall_calls - a0.alltoall_calls, 2u);
    EXPECT_EQ(b1.alltoall_calls - b0.alltoall_calls, 2u);

    const auto bs = pf.batching();
    EXPECT_EQ(bs.transforms, 2u);
    EXPECT_EQ(bs.fields, 8u);
    EXPECT_EQ(bs.exchanges, 4u);  // 2 transpose stages per transform
    EXPECT_GT(bs.reorder_calls, 0u);
    EXPECT_EQ(bs.reorder_fields % bs.reorder_calls, 0u);
  });
}

TEST(PfftBatch, ChunksBatchesWiderThanMaxBatch) {
  const grid g{16, 6, 8};
  run_world(2, [&](communicator& world) {
    cart2d cart(world, 2, 1);
    kernel_config cfg;
    cfg.max_batch = 2;
    parallel_fft pf(g, cart, cfg);
    const auto& d = pf.dec();
    std::vector<aligned_buffer<cplx>> spec(5);
    std::vector<aligned_buffer<double>> phys(5);
    std::vector<const cplx*> sp(5);
    std::vector<double*> ph(5);
    for (std::size_t f = 0; f < 5; ++f) {
      spec[f].reset(d.y_pencil_elems());
      spec[f].fill(cplx{0.0, 0.0});
      phys[f].reset(d.x_pencil_real_elems());
      sp[f] = spec[f].data();
      ph[f] = phys[f].data();
    }
    pf.to_physical_batch(sp.data(), ph.data(), 5);
    // 5 fields in chunks of 2 -> 3 chunks x 1 counted transpose stage:
    // the y<->z stage runs on the size-1 CommB (pb = 1) and is elided.
    EXPECT_EQ(pf.batching().exchanges, 3u);
    EXPECT_EQ(pf.batching().transforms, 1u);
    EXPECT_EQ(pf.batching().fields, 5u);
  });
}

TEST(PfftBatch, WorkspaceGrowsLinearlyWithMaxBatch) {
  const grid g{16, 8, 8};
  run_world(1, [&](communicator& world) {
    cart2d cart(world, 1, 1);
    kernel_config one;
    kernel_config five;
    five.max_batch = 5;
    parallel_fft pf1(g, cart, one);
    parallel_fft pf5(g, cart, five);
    EXPECT_EQ(pf5.workspace_bytes(), 5 * pf1.workspace_bytes());
  });
}

TEST(PfftBatch, RejectsInvalidConfig) {
  const grid g{8, 4, 8};
  run_world(1, [&](communicator& world) {
    cart2d cart(world, 1, 1);
    kernel_config bad;
    bad.max_batch = 0;
    EXPECT_THROW(parallel_fft(g, cart, bad), pcf::precondition_error);
    kernel_config bad2;
    bad2.pipeline_depth = 0;
    EXPECT_THROW(parallel_fft(g, cart, bad2), pcf::precondition_error);
  });
}

}  // namespace
