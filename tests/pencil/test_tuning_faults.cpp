// Fault-injection matrix for the tuning cache (ctest label: faults).
//
// The cache is advisory: every damaged state — truncated header or body,
// flipped bits, version skew, a crash mid-store — must degrade to
// re-measurement with a warning. Nothing here may abort a run, and a
// failed store must leave the previous cache intact (the store goes
// through io::atomic_file_writer, same guarantee as the checkpoints).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "io/atomic_file.hpp"
#include "pencil/autotune.hpp"

namespace {

using pcf::io::fault_injection_scope;
using pcf::io::fault_kind;
using pcf::io::fault_policy;
using pcf::io::injected_crash;
using pcf::pencil::autotune_transforms;
using pcf::pencil::exchange_strategy;
using pcf::pencil::find_tuning_entry;
using pcf::pencil::grid;
using pcf::pencil::kernel_config;
using pcf::pencil::load_tuning_cache;
using pcf::pencil::save_tuning_cache;
using pcf::pencil::tune_choice;
using pcf::pencil::tune_entry;
using pcf::pencil::tune_key;
using pcf::pencil::tune_options;
using pcf::pencil::tune_report;
using pcf::vmpi::cart2d;
using pcf::vmpi::communicator;
using pcf::vmpi::run_world;

std::string cache_path(const std::string& tag) {
  const std::string p =
      ::testing::TempDir() + "/pcf_tunefault_" + tag + ".bin";
  std::remove(p.c_str());
  return p;
}

tune_key some_key(std::uint32_t nx = 16) {
  tune_key k;
  k.nx = nx;
  k.ny = 17;
  k.nz = 8;
  k.pa = 2;
  k.pb = 2;
  k.max_batch = 5;
  k.flags = 3;
  return k;
}

std::vector<tune_entry> two_entries() {
  return {{some_key(16),
           {exchange_strategy::pairwise, exchange_strategy::alltoall, 5, 2}},
          {some_key(32),
           {exchange_strategy::alltoall, exchange_strategy::alltoall, 3,
            1}}};
}

std::vector<char> slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(is),
          std::istreambuf_iterator<char>()};
}

void dump(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(TuningFaults, TruncatedHeaderFallsBackWithWarning) {
  const std::string path = cache_path("hdr");
  dump(path, {'P', 'F'});
  std::vector<std::string> warnings;
  EXPECT_TRUE(load_tuning_cache(path, &warnings).empty());
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_NE(warnings[0].find("truncated"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TuningFaults, BadMagicFallsBackWithWarning) {
  const std::string path = cache_path("magic");
  dump(path, std::vector<char>(64, 'x'));
  std::vector<std::string> warnings;
  EXPECT_TRUE(load_tuning_cache(path, &warnings).empty());
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_NE(warnings[0].find("magic"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TuningFaults, VersionSkewFallsBackWithWarning) {
  const std::string path = cache_path("version");
  save_tuning_cache(path, two_entries());
  auto bytes = slurp(path);
  const std::uint32_t future = 99;
  std::memcpy(bytes.data() + 4, &future, 4);  // version word
  dump(path, bytes);
  std::vector<std::string> warnings;
  EXPECT_TRUE(load_tuning_cache(path, &warnings).empty());
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_NE(warnings[0].find("version"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TuningFaults, FlippedEntryBitIsSkippedOthersSurvive) {
  const std::string path = cache_path("flip");
  save_tuning_cache(path, two_entries());
  auto bytes = slurp(path);
  bytes[12 + 3] ^= 0x10;  // a payload byte of entry 0
  dump(path, bytes);
  std::vector<std::string> warnings;
  const auto entries = load_tuning_cache(path, &warnings);
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_NE(warnings[0].find("CRC"), std::string::npos);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(find_tuning_entry(entries, some_key(16)), nullptr);
  EXPECT_NE(find_tuning_entry(entries, some_key(32)), nullptr);
  std::remove(path.c_str());
}

TEST(TuningFaults, TruncatedBodyKeepsValidPrefix) {
  const std::string path = cache_path("body");
  save_tuning_cache(path, two_entries());
  auto bytes = slurp(path);
  bytes.resize(bytes.size() - 20);  // cut into the second entry
  dump(path, bytes);
  std::vector<std::string> warnings;
  const auto entries = load_tuning_cache(path, &warnings);
  ASSERT_EQ(warnings.size(), 1u);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_NE(find_tuning_entry(entries, some_key(16)), nullptr);
  std::remove(path.c_str());
}

TEST(TuningFaults, InjectedShortWriteIsDetectedOnLoad) {
  const std::string path = cache_path("short");
  {
    fault_policy p;
    p.kind = fault_kind::short_write;
    p.byte = 40;  // inside the first entry's payload
    p.path_match = "pcf_tunefault_short";
    fault_injection_scope scope(p);
    save_tuning_cache(path, two_entries());  // commits a truncated file
  }
  std::vector<std::string> warnings;
  const auto entries = load_tuning_cache(path, &warnings);
  EXPECT_TRUE(entries.empty());
  EXPECT_FALSE(warnings.empty());
  std::remove(path.c_str());
}

TEST(TuningFaults, InjectedBitFlipIsDetectedOnLoad) {
  const std::string path = cache_path("bitflip");
  {
    fault_policy p;
    p.kind = fault_kind::bit_flip;
    p.byte = 16;  // a payload byte of entry 0
    p.path_match = "pcf_tunefault_bitflip";
    fault_injection_scope scope(p);
    save_tuning_cache(path, two_entries());
  }
  std::vector<std::string> warnings;
  const auto entries = load_tuning_cache(path, &warnings);
  ASSERT_EQ(entries.size(), 1u);  // damaged entry dropped, other kept
  EXPECT_FALSE(warnings.empty());
  std::remove(path.c_str());
}

TEST(TuningFaults, CrashMidStoreLeavesPreviousCacheIntact) {
  const std::string path = cache_path("crash");
  save_tuning_cache(path, {two_entries()[0]});
  {
    fault_policy p;
    p.kind = fault_kind::crash_after_n;
    p.byte = 30;
    p.path_match = "pcf_tunefault_crash";
    fault_injection_scope scope(p);
    EXPECT_THROW(save_tuning_cache(path, two_entries()), injected_crash);
  }
  std::vector<std::string> warnings;
  const auto entries = load_tuning_cache(path, &warnings);
  EXPECT_TRUE(warnings.empty());  // the old cache survived bit for bit
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_NE(find_tuning_entry(entries, some_key(16)), nullptr);
  std::remove(path.c_str());
}

// The full-flow guarantee: a cache that cannot be read *or* written still
// produces a usable tuning choice — measurement proceeds, the failure
// surfaces as warnings, and nothing throws out of autotune_transforms.
TEST(TuningFaults, AutotuneSurvivesUnreadableAndUnwritableCache) {
  const std::string path = cache_path("flow");
  dump(path, std::vector<char>(64, 'x'));  // unreadable: bad magic
  run_world(4, [&](communicator& world) {
    cart2d cart(world, 2, 2);
    const grid g{8, 9, 8};
    kernel_config base;
    base.max_batch = 3;
    tune_options opt;
    opt.cache_path = path;
    opt.reps = 1;

    fault_policy p;
    p.kind = fault_kind::fail_open;  // unwritable: temp creation fails
    p.path_match = "pcf_tunefault_flow";
    fault_injection_scope scope(p);

    tune_report rep;
    ASSERT_NO_THROW(rep = autotune_transforms(g, world, cart, base, opt));
    EXPECT_FALSE(rep.from_cache);
    EXPECT_FALSE(rep.stored);
    EXPECT_GE(rep.choice.batch, 1);
    if (world.rank() == 0) {
      // One warning for the unreadable load, one for the failed store.
      EXPECT_GE(rep.warnings.size(), 2u);
    }
  });
  std::remove(path.c_str());
}

}  // namespace
