// The in-process tuning memo that fronts the on-disk cache: concurrent
// simulations tuning the same config measure once and share the choice,
// and distinct configs merging into one cache file cannot drop each
// other's entries (the load-merge-store race this memo layer fixed).
#include <gtest/gtest.h>

#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "pencil/autotune.hpp"
#include "pencil/pencil.hpp"

namespace {

using pcf::pencil::autotune_decomposition;
using pcf::pencil::autotune_transforms;
using pcf::pencil::decomp_tune_report;
using pcf::pencil::decomposition;
using pcf::pencil::find_tuning_entry;
using pcf::pencil::grid;
using pcf::pencil::kernel_config;
using pcf::pencil::load_tuning_cache;
using pcf::pencil::make_tune_key;
using pcf::pencil::tune_options;
using pcf::pencil::tune_report;
using pcf::pencil::tuning_memo_reset;
using pcf::pencil::tuning_memo_statistics;
using pcf::vmpi::cart2d;
using pcf::vmpi::communicator;
using pcf::vmpi::run_world;

std::string cache_path(const std::string& tag) {
  const std::string p = ::testing::TempDir() + "/pcf_memo_" + tag + ".bin";
  std::remove(p.c_str());
  return p;
}

tune_report tune_once(const grid& g, const std::string& path,
                      bool force = false) {
  tune_report rep;
  run_world(1, [&](communicator& world) {
    cart2d cart(world, 1, 1);
    kernel_config base;
    base.max_batch = 3;
    tune_options opt;
    opt.cache_path = path;
    opt.reps = 1;
    opt.force_retune = force;
    rep = autotune_transforms(g, world, cart, base, opt);
  });
  return rep;
}

TEST(TuningMemo, ConcurrentSameKeyCallersMeasureOnceAndAgree) {
  tuning_memo_reset();
  const std::string path = cache_path("samekey");
  const grid g{8, 9, 8};

  // Six independent single-rank worlds (the campaign's tenant shape) tune
  // the same config against the same cache file at once. The memo makes
  // one of them the owner; the rest block until it publishes.
  constexpr int kCallers = 6;
  std::vector<tune_report> reps(kCallers);
  {
    std::vector<std::thread> threads;
    for (int i = 0; i < kCallers; ++i)
      threads.emplace_back([&, i] { reps[i] = tune_once(g, path); });
    for (auto& t : threads) t.join();
  }

  int measured = 0;
  for (const tune_report& r : reps) {
    if (!r.from_cache) {
      ++measured;
      EXPECT_FALSE(r.measured.empty());
    } else {
      // Served without measuring — by the memo (the file was still being
      // written or just written by the owner).
      EXPECT_TRUE(r.measured.empty());
    }
    EXPECT_EQ(r.choice, reps[0].choice);
  }
  EXPECT_EQ(measured, 1);

  const auto stats = tuning_memo_statistics();
  EXPECT_EQ(stats.hits, static_cast<std::uint64_t>(kCallers - 1));
  EXPECT_GE(stats.entries, 1u);

  // Exactly one entry landed in the file: the owner's store, un-raced.
  const auto entries = load_tuning_cache(path);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].choice, reps[0].choice);
  std::remove(path.c_str());
}

TEST(TuningMemo, DistinctKeysMergingIntoOneFileKeepEveryEntry) {
  tuning_memo_reset();
  const std::string path = cache_path("merge");
  // Four distinct configs (different grids), one cache file, all storing
  // concurrently. Without the per-path file mutex the load-merge-store
  // cycles race and the last writer drops earlier winners.
  const std::vector<grid> grids = {
      {8, 9, 8}, {16, 9, 8}, {8, 9, 16}, {16, 9, 16}};
  {
    std::vector<std::thread> threads;
    for (const grid& g : grids)
      threads.emplace_back([&, g] { (void)tune_once(g, path); });
    for (auto& t : threads) t.join();
  }
  const auto entries = load_tuning_cache(path);
  EXPECT_EQ(entries.size(), grids.size());
  for (const grid& g : grids) {
    kernel_config base;
    base.max_batch = 3;
    EXPECT_NE(find_tuning_entry(entries, make_tune_key(g, base, 1, 1)),
              nullptr)
        << "entry for nx=" << g.nx << " nz=" << g.nz << " was dropped";
  }
  std::remove(path.c_str());
}

TEST(TuningMemo, MemoFrontsTheFileCache) {
  tuning_memo_reset();
  const std::string path = cache_path("tiers");
  const grid g{8, 9, 8};

  const tune_report cold = tune_once(g, path);
  EXPECT_FALSE(cold.from_cache);
  EXPECT_FALSE(cold.from_memo);

  // Warm: served by the memo, no file I/O.
  const tune_report warm = tune_once(g, path);
  EXPECT_TRUE(warm.from_cache);
  EXPECT_TRUE(warm.from_memo);
  EXPECT_EQ(warm.choice, cold.choice);

  // Memo dropped: falls through to the file tier, which re-seeds the memo.
  tuning_memo_reset();
  const tune_report file = tune_once(g, path);
  EXPECT_TRUE(file.from_cache);
  EXPECT_FALSE(file.from_memo);
  EXPECT_EQ(file.choice, cold.choice);

  const tune_report reseeded = tune_once(g, path);
  EXPECT_TRUE(reseeded.from_memo);
  std::remove(path.c_str());
}

TEST(TuningMemo, ForceRetuneRemeasuresAndRepublishes) {
  tuning_memo_reset();
  const std::string path = cache_path("force");
  const grid g{8, 9, 8};

  (void)tune_once(g, path);
  const tune_report forced = tune_once(g, path, /*force=*/true);
  EXPECT_FALSE(forced.from_cache);
  EXPECT_FALSE(forced.measured.empty());

  // The re-measured choice was republished into the memo.
  const tune_report warm = tune_once(g, path);
  EXPECT_TRUE(warm.from_memo);
  EXPECT_EQ(warm.choice, forced.choice);
  std::remove(path.c_str());
}

TEST(TuningMemo, DecompositionTuningSharesTheMemo) {
  tuning_memo_reset();
  const std::string path = cache_path("decomp");
  run_world(4, [&](communicator& world) {
    const grid g{8, 9, 8};
    kernel_config base;
    base.max_batch = 3;
    tune_options opt;
    opt.cache_path = path;
    opt.reps = 1;

    const decomp_tune_report cold = autotune_decomposition(
        g, world, decomposition::tuned, 2, 2, 0, base, opt);
    EXPECT_FALSE(cold.from_cache);

    const decomp_tune_report warm = autotune_decomposition(
        g, world, decomposition::tuned, 2, 2, 0, base, opt);
    EXPECT_TRUE(warm.from_cache);
    EXPECT_TRUE(warm.from_memo);
    EXPECT_EQ(warm.plan, cold.plan);

    if (world.rank() == 0) tuning_memo_reset();
    world.barrier();
    const decomp_tune_report file = autotune_decomposition(
        g, world, decomposition::tuned, 2, 2, 0, base, opt);
    EXPECT_TRUE(file.from_cache);
    EXPECT_FALSE(file.from_memo);
    EXPECT_EQ(file.plan, cold.plan);
  });
  std::remove(path.c_str());
}

}  // namespace
