#include <gtest/gtest.h>

#include "pencil/pencil.hpp"

namespace {

using pcf::pencil::block_range;
using pcf::pencil::decomp;
using pcf::pencil::grid;
using pcf::pencil::kernel_config;

TEST(BlockRange, CoversWithoutOverlap) {
  for (std::size_t n : {1u, 7u, 16u, 100u, 1023u}) {
    for (int p : {1, 2, 3, 4, 7, 16}) {
      std::size_t next = 0;
      for (int r = 0; r < p; ++r) {
        auto b = block_range(n, p, r);
        EXPECT_EQ(b.offset, next);
        next += b.count;
      }
      EXPECT_EQ(next, n);
    }
  }
}

TEST(BlockRange, BalancedWithinOne) {
  for (std::size_t n : {10u, 33u, 100u}) {
    for (int p : {3, 4, 7}) {
      std::size_t mn = n, mx = 0;
      for (int r = 0; r < p; ++r) {
        auto b = block_range(n, p, r);
        mn = std::min(mn, b.count);
        mx = std::max(mx, b.count);
      }
      EXPECT_LE(mx - mn, 1u);
    }
  }
}

TEST(BlockRange, MoreRanksThanItems) {
  // 2 items over 4 ranks: two ranks get one item, two get zero.
  std::size_t total = 0;
  for (int r = 0; r < 4; ++r) total += block_range(2, 4, r).count;
  EXPECT_EQ(total, 2u);
}

TEST(Decomp, CustomizedKernelDropsNyquistAndPads) {
  grid g{16, 9, 8};
  decomp d(g, kernel_config{}, 2, 2, 0, 1);
  EXPECT_EQ(d.nxs, 8u);   // nx/2, Nyquist dropped
  EXPECT_EQ(d.nxf, 24u);  // 3 nx / 2
  EXPECT_EQ(d.nzf, 12u);  // 3 nz / 2
  EXPECT_EQ(d.x_line_modes(), 13u);
  // Coordinates (0, 1): x block over PA=2, z/y blocks over PB=2, rank b=1.
  EXPECT_EQ(d.xs.count, 4u);
  EXPECT_EQ(d.zs.offset, 4u);
  EXPECT_EQ(d.yb.count, 4u);  // 9 over 2 -> 5, 4
  EXPECT_EQ(d.yb.offset, 5u);
}

TEST(Decomp, P3dfftModeKeepsNyquistNoPad) {
  grid g{16, 8, 8};
  decomp d(g, kernel_config::p3dfft_mode(), 1, 1, 0, 0);
  EXPECT_EQ(d.nxs, 9u);  // nx/2 + 1
  EXPECT_EQ(d.nxf, 16u);
  EXPECT_EQ(d.nzf, 8u);
  EXPECT_EQ(d.x_line_modes(), 9u);  // no pad region
}

TEST(Decomp, RejectsBadGrid) {
  kernel_config cfg;
  EXPECT_THROW(decomp(grid{6, 8, 8}, cfg, 1, 1, 0, 0), pcf::precondition_error);
  EXPECT_THROW(decomp(grid{8, 8, 7}, cfg, 1, 1, 0, 0), pcf::precondition_error);
  EXPECT_THROW(decomp(grid{8, 0, 8}, cfg, 1, 1, 0, 0), pcf::precondition_error);
}

TEST(Decomp, PencilElementCounts) {
  grid g{8, 6, 8};
  decomp d(g, kernel_config{}, 1, 1, 0, 0);
  EXPECT_EQ(d.y_pencil_elems(), 4u * 8u * 6u);
  EXPECT_EQ(d.z_pencil_elems(), 4u * 6u * 12u);
  EXPECT_EQ(d.x_pencil_real_elems(), 12u * 6u * 12u);
}

}  // namespace
