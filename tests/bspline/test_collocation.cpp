// Integration of bspline + banded: collocation interpolation and two-point
// boundary-value solves — the exact linear-algebra pipeline the DNS core
// runs per wavenumber.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "banded/compact.hpp"
#include "bspline/bspline.hpp"

namespace {

using pcf::banded::compact_banded;
using pcf::bspline::basis;

/// Interpolate f at the Greville points: solve M0 c = f(xi).
std::vector<double> interpolate(const basis& b, double (*f)(double)) {
  auto M = b.collocation_matrix(0);
  const auto& xi = b.greville();
  std::vector<double> c(xi.size());
  for (std::size_t i = 0; i < xi.size(); ++i) c[i] = f(xi[i]);
  M.factorize();
  M.solve(c.data());
  return c;
}

TEST(Collocation, MatrixTimesCoefficientsEqualsValuesAtGreville) {
  auto b = basis::uniform(-1.0, 1.0, 12, 7);
  auto M = b.collocation_matrix(0);
  std::vector<double> c(static_cast<std::size_t>(b.size()));
  for (std::size_t i = 0; i < c.size(); ++i) c[i] = std::cos(0.3 * i);
  std::vector<double> y(c.size());
  M.apply(c.data(), y.data());
  const auto& xi = b.greville();
  for (std::size_t i = 0; i < c.size(); ++i)
    EXPECT_NEAR(y[i], b.spline_value(c.data(), xi[i]), 1e-12);
}

TEST(Collocation, InterpolationReproducesPolynomialsExactly) {
  // Any polynomial with degree <= spline degree lies in the spline space,
  // so Greville interpolation must reproduce it to roundoff.
  auto b = basis::channel(10, 2.0, 7);
  auto poly = [](double x) {
    return 1.0 + x * (0.5 + x * (-2.0 + x * (1.0 + x * (0.25 + x * (-0.125 + x * (3.0 + 0.7 * x))))));
  };
  auto M = b.collocation_matrix(0);
  const auto& xi = b.greville();
  std::vector<double> c(xi.size());
  for (std::size_t i = 0; i < xi.size(); ++i) c[i] = poly(xi[i]);
  M.factorize();
  M.solve(c.data());
  for (int s = 0; s <= 100; ++s) {
    const double x = -1.0 + 2.0 * s / 100.0;
    EXPECT_NEAR(b.spline_value(c.data(), x), poly(x), 1e-10);
  }
}

TEST(Collocation, InterpolationOfSineIsSpectrallyAccurate) {
  auto fine = basis::uniform(-1.0, 1.0, 32, 7);
  auto c = interpolate(fine, [](double x) { return std::sin(3.0 * x); });
  double err = 0.0;
  for (int s = 0; s <= 200; ++s) {
    const double x = -1.0 + 2.0 * s / 200.0;
    err = std::max(err, std::abs(fine.spline_value(c.data(), x) - std::sin(3.0 * x)));
  }
  EXPECT_LT(err, 1e-9);
}

TEST(Collocation, InterpolationErrorDecreasesWithOrderEight) {
  // 7th-degree splines: interpolation error ~ h^8.
  auto coarse = basis::uniform(-1.0, 1.0, 8, 7);
  auto fine = basis::uniform(-1.0, 1.0, 16, 7);
  auto f = [](double x) { return std::sin(4.0 * x + 0.3); };
  auto err = [&](const basis& b) {
    auto M = b.collocation_matrix(0);
    const auto& xi = b.greville();
    std::vector<double> c(xi.size());
    for (std::size_t i = 0; i < xi.size(); ++i) c[i] = f(xi[i]);
    M.factorize();
    M.solve(c.data());
    double e = 0.0;
    for (int s = 0; s <= 400; ++s) {
      const double x = -1.0 + 2.0 * s / 400.0;
      e = std::max(e, std::abs(b.spline_value(c.data(), x) - f(x)));
    }
    return e;
  };
  const double e_coarse = err(coarse), e_fine = err(fine);
  // Expect at least ~2^6 reduction (allowing slack from the stretched ends).
  EXPECT_LT(e_fine, e_coarse / 64.0);
}

TEST(Collocation, HelmholtzDirichletSolveMatchesAnalytic) {
  // Solve u'' - k^2 u = f with u(+-1) = 0, where u_exact = sin(pi x):
  // f = -(pi^2 + k^2) sin(pi x). This is equation (4) of the paper.
  const double k2 = 4.0;
  auto b = basis::channel(24, 1.5, 7);
  const int n = b.size();
  auto M0 = b.collocation_matrix(0);
  auto M2 = b.collocation_matrix(2);
  compact_banded A(n, b.degree());
  for (int i = 0; i < n; ++i) {
    const int s = A.row_start(i);
    for (int j = s; j <= s + 2 * b.degree(); ++j) {
      if (j < 0 || j >= n) continue;
      double v = 0.0;
      if (M2.in_profile(i, j)) v += M2.at(i, j);
      if (M0.in_profile(i, j)) v -= k2 * M0.at(i, j);
      A.at(i, j) = v;
    }
  }
  // Dirichlet rows: clamped ends interpolate the first/last coefficient.
  for (int j = A.row_start(0); j <= A.row_start(0) + 2 * b.degree(); ++j)
    A.at(0, j) = (j == 0) ? 1.0 : 0.0;
  for (int j = A.row_start(n - 1); j <= A.row_start(n - 1) + 2 * b.degree(); ++j)
    A.at(n - 1, j) = (j == n - 1) ? 1.0 : 0.0;

  const auto& xi = b.greville();
  std::vector<double> rhs(static_cast<std::size_t>(n));
  const double pi = std::numbers::pi;
  for (int i = 0; i < n; ++i)
    rhs[static_cast<std::size_t>(i)] =
        -(pi * pi + k2) * std::sin(pi * xi[static_cast<std::size_t>(i)]);
  rhs.front() = 0.0;
  rhs.back() = 0.0;

  A.factorize();
  A.solve(rhs.data());
  for (int s = 0; s <= 100; ++s) {
    const double x = -1.0 + 2.0 * s / 100.0;
    EXPECT_NEAR(b.spline_value(rhs.data(), x), std::sin(pi * x), 1e-7) << x;
  }
}

TEST(Collocation, SecondDerivativeMatrixAnnihilatesLinears) {
  auto b = basis::uniform(-1.0, 1.0, 10, 5);
  auto M2 = b.collocation_matrix(2);
  // Coefficients of the linear function x are the Greville points.
  const auto& g = b.greville();
  std::vector<double> y(g.size());
  M2.apply(g.data(), y.data());
  for (double v : y) EXPECT_NEAR(v, 0.0, 1e-10);
}

TEST(Collocation, FirstDerivativeMatrixDifferentiatesQuadratic) {
  auto b = basis::uniform(-1.0, 1.0, 10, 5);
  auto M0 = b.collocation_matrix(0);
  auto M1 = b.collocation_matrix(1);
  // Interpolate x^2, apply D, compare with 2x at Greville points.
  const auto& xi = b.greville();
  std::vector<double> c(xi.size());
  for (std::size_t i = 0; i < xi.size(); ++i) c[i] = xi[i] * xi[i];
  M0.factorize();
  M0.solve(c.data());
  std::vector<double> d(c.size());
  M1.apply(c.data(), d.data());
  for (std::size_t i = 0; i < xi.size(); ++i)
    EXPECT_NEAR(d[i], 2.0 * xi[i], 1e-10);
}

}  // namespace
