#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "bspline/bspline.hpp"
#include "util/check.hpp"

namespace {

using pcf::bspline::basis;

class BasisDegrees : public ::testing::TestWithParam<int> {};

TEST_P(BasisDegrees, PartitionOfUnity) {
  const int p = GetParam();
  auto b = basis::uniform(-1.0, 1.0, 12, p);
  std::vector<double> N(static_cast<std::size_t>(p) + 1);
  for (int s = 0; s <= 200; ++s) {
    const double x = -1.0 + 2.0 * s / 200.0;
    b.eval(x, N.data());
    double sum = 0.0;
    for (double v : N) sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-13) << "x=" << x;
  }
}

TEST_P(BasisDegrees, BasisValuesNonnegative) {
  const int p = GetParam();
  auto b = basis::uniform(0.0, 3.0, 9, p);
  std::vector<double> N(static_cast<std::size_t>(p) + 1);
  for (int s = 0; s <= 100; ++s) {
    const double x = 3.0 * s / 100.0;
    b.eval(x, N.data());
    for (double v : N) EXPECT_GE(v, -1e-14);
  }
}

TEST_P(BasisDegrees, DerivativeOfUnityIsZero) {
  const int p = GetParam();
  auto b = basis::uniform(-2.0, 2.0, 10, p);
  std::vector<double> ders(2 * static_cast<std::size_t>(p + 1));
  for (int s = 1; s < 50; ++s) {
    const double x = -2.0 + 4.0 * s / 50.0;
    b.eval_derivs(x, 1, ders.data());
    double sum = 0.0;
    for (int c = 0; c <= p; ++c) sum += ders[static_cast<std::size_t>(p + 1 + c)];
    EXPECT_NEAR(sum, 0.0, 1e-11);
  }
}

TEST_P(BasisDegrees, EvalDerivsRowZeroMatchesEval) {
  const int p = GetParam();
  auto b = basis::uniform(0.0, 1.0, 8, p);
  std::vector<double> N(static_cast<std::size_t>(p) + 1);
  std::vector<double> ders(3 * static_cast<std::size_t>(p + 1));
  for (int s = 0; s <= 40; ++s) {
    const double x = s / 40.0;
    const int f1 = b.eval(x, N.data());
    const int f2 = b.eval_derivs(x, 2, ders.data());
    EXPECT_EQ(f1, f2);
    for (int c = 0; c <= p; ++c)
      EXPECT_NEAR(N[static_cast<std::size_t>(c)], ders[static_cast<std::size_t>(c)], 1e-14);
  }
}

TEST_P(BasisDegrees, DerivativesMatchFiniteDifferences) {
  const int p = GetParam();
  auto b = basis::uniform(-1.0, 1.0, 7, p);
  const int n = b.size();
  // A fixed smooth coefficient vector.
  std::vector<double> c(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) c[static_cast<std::size_t>(i)] = std::sin(0.7 * i);
  const double h = 1e-6;
  for (double x : {-0.63, -0.21, 0.0, 0.37, 0.82}) {
    const double d_exact = b.spline_deriv(c.data(), x, 1);
    const double d_fd =
        (b.spline_value(c.data(), x + h) - b.spline_value(c.data(), x - h)) /
        (2 * h);
    EXPECT_NEAR(d_exact, d_fd, 1e-5 * std::max(1.0, std::abs(d_exact)));
    const double d2_exact = b.spline_deriv(c.data(), x, 2);
    const double d2_fd = (b.spline_value(c.data(), x + h) -
                          2 * b.spline_value(c.data(), x) +
                          b.spline_value(c.data(), x - h)) /
                         (h * h);
    EXPECT_NEAR(d2_exact, d2_fd, 1e-2 * std::max(1.0, std::abs(d2_exact)));
  }
}

INSTANTIATE_TEST_SUITE_P(Degrees, BasisDegrees, ::testing::Values(1, 2, 3, 5, 7));

TEST(Basis, SizesAndKnots) {
  auto b = basis::uniform(0.0, 1.0, 10, 7);
  EXPECT_EQ(b.size(), 17);             // intervals + degree
  EXPECT_EQ(b.knots().size(), 25u);    // n + p + 1
  EXPECT_EQ(b.degree(), 7);
  EXPECT_EQ(b.knots().front(), 0.0);
  EXPECT_EQ(b.knots().back(), 1.0);
}

TEST(Basis, GrevillePointsSpanDomainAndAreIncreasing) {
  auto b = basis::channel(16, 2.0, 7);
  const auto& g = b.greville();
  EXPECT_EQ(static_cast<int>(g.size()), b.size());
  EXPECT_DOUBLE_EQ(g.front(), -1.0);
  EXPECT_DOUBLE_EQ(g.back(), 1.0);
  for (std::size_t i = 1; i < g.size(); ++i) EXPECT_GT(g[i], g[i - 1]);
}

TEST(Basis, ChannelStretchingClustersTowardWalls) {
  auto b = basis::channel(32, 2.5, 7);
  const auto& br = b.breakpoints();
  const double wall_spacing = br[1] - br[0];
  const double center_spacing = br[17] - br[16];
  EXPECT_LT(wall_spacing, 0.4 * center_spacing);
  // Symmetry about the centerline.
  for (std::size_t i = 0; i < br.size(); ++i)
    EXPECT_NEAR(br[i], -br[br.size() - 1 - i], 1e-14);
}

TEST(Basis, FindSpanBrackets) {
  auto b = basis::uniform(0.0, 1.0, 4, 3);
  for (int s = 0; s <= 20; ++s) {
    const double x = s / 20.0;
    const int mu = b.find_span(x);
    EXPECT_LE(b.knots()[static_cast<std::size_t>(mu)], x);
    if (x < 1.0) {
      EXPECT_LT(x, b.knots()[static_cast<std::size_t>(mu + 1)]);
    }
  }
  // Right end maps to the last nonempty span.
  EXPECT_EQ(b.find_span(1.0), b.size() - 1);
}

TEST(Basis, ClampedEndsInterpolateFirstAndLastCoefficient) {
  auto b = basis::uniform(-1.0, 1.0, 9, 7);
  std::vector<double> c(static_cast<std::size_t>(b.size()), 0.0);
  c.front() = 3.5;
  c.back() = -2.0;
  EXPECT_NEAR(b.spline_value(c.data(), -1.0), 3.5, 1e-13);
  EXPECT_NEAR(b.spline_value(c.data(), 1.0), -2.0, 1e-13);
}

TEST(Basis, PolynomialReproductionViaGrevilleWeights) {
  // Linear precision: sum_i xi_i N_i(x) = x exactly (Greville's identity).
  auto b = basis::channel(10, 1.8, 7);
  const auto& g = b.greville();
  for (int s = 0; s <= 60; ++s) {
    const double x = -1.0 + 2.0 * s / 60.0;
    EXPECT_NEAR(b.spline_value(g.data(), x), x, 1e-12);
  }
}

TEST(Basis, HighDerivativeBeyondDegreeIsZero) {
  auto b = basis::uniform(0.0, 1.0, 6, 3);
  std::vector<double> c(static_cast<std::size_t>(b.size()), 1.0);
  EXPECT_EQ(b.spline_deriv(c.data(), 0.5, 4), 0.0);
}

TEST(Basis, RejectsBadConstruction) {
  EXPECT_THROW(basis({0.0, 0.0, 1.0}, 3), pcf::precondition_error);
  EXPECT_THROW(basis({1.0, 0.0}, 3), pcf::precondition_error);
  EXPECT_THROW(basis({0.0}, 3), pcf::precondition_error);
  EXPECT_THROW(basis::uniform(0.0, 1.0, 0, 3), pcf::precondition_error);
  EXPECT_THROW(basis::channel(8, -1.0, 3), pcf::precondition_error);
}

}  // namespace
