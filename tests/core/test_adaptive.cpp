// Adaptive time stepping and the implicit-solver cache.
#include <gtest/gtest.h>

#include <cmath>

#include "core/simulation.hpp"

namespace {

using pcf::core::channel_config;
using pcf::core::channel_dns;
using pcf::vmpi::communicator;
using pcf::vmpi::run_world;

channel_config cfg_small() {
  channel_config cfg;
  cfg.nx = 8;
  cfg.nz = 8;
  cfg.ny = 24;
  cfg.dt = 1e-4;
  return cfg;
}

TEST(SolverCache, CachedAndUncachedAreIdentical) {
  std::vector<double> cached, uncached;
  for (bool cache : {true, false}) {
    auto cfg = cfg_small();
    cfg.cache_solvers = cache;
    run_world(1, [&](communicator& world) {
      channel_dns dns(cfg, world);
      dns.initialize(0.1, 11);
      for (int s = 0; s < 3; ++s) dns.step();
      auto& out = cache ? cached : uncached;
      out = dns.mean_profile();
      out.push_back(dns.kinetic_energy());
    });
  }
  ASSERT_EQ(cached.size(), uncached.size());
  for (std::size_t i = 0; i < cached.size(); ++i)
    EXPECT_DOUBLE_EQ(cached[i], uncached[i]);
}

TEST(SolverCache, RepeatedStepsReuseFactorizations) {
  // With the cache on, steps after the first must not get slower; the real
  // check is correctness: energies follow the same trajectory as a fresh
  // instance stepping once more.
  auto cfg = cfg_small();
  run_world(1, [&](communicator& world) {
    channel_dns a(cfg, world), b(cfg, world);
    a.initialize(0.1, 2);
    b.initialize(0.1, 2);
    a.step();
    a.step();
    b.step();
    b.step();
    EXPECT_DOUBLE_EQ(a.kinetic_energy(), b.kinetic_energy());
  });
}

TEST(AdaptiveDt, SetDtTakesEffectAndStaysCorrect) {
  // Mean Stokes decay with a dt change mid-run still matches the analytic
  // solution (the solver cache must be invalidated on the change).
  run_world(1, [&](communicator& world) {
    auto cfg = cfg_small();
    cfg.forcing = 0.0;
    cfg.re_tau = 1.0;
    cfg.dt = 5e-4;
    channel_dns dns(cfg, world);
    dns.initialize(0.0);
    const auto& ops = dns.operators();
    const double pi = std::numbers::pi;
    std::vector<double> u0(static_cast<std::size_t>(ops.n()));
    for (std::size_t i = 0; i < u0.size(); ++i)
      u0[i] = std::cos(0.5 * pi * ops.points()[i]);
    dns.set_mean_profile(u0);
    for (int s = 0; s < 40; ++s) dns.step();
    dns.set_dt(2.5e-4);
    for (int s = 0; s < 80; ++s) dns.step();
    const double t = 40 * 5e-4 + 80 * 2.5e-4;
    EXPECT_NEAR(dns.time(), t, 1e-12);
    const double decay = std::exp(-0.25 * pi * pi * t);
    const auto prof = dns.mean_profile();
    for (std::size_t i = 0; i < prof.size(); ++i)
      EXPECT_NEAR(prof[i], decay * u0[i], 1e-6);
  });
}

TEST(SolverCache, CachedAndUncachedAgreeAcrossDtChange) {
  // set_dt must invalidate the solver arena AND the factored mean-flow
  // operator cache; a stale mean operator would make the cached run drift
  // from the uncached one.
  std::vector<double> cached, uncached;
  for (bool cache : {true, false}) {
    auto cfg = cfg_small();
    cfg.cache_solvers = cache;
    run_world(1, [&](communicator& world) {
      channel_dns dns(cfg, world);
      dns.initialize(0.1, 5);
      for (int s = 0; s < 2; ++s) dns.step();
      dns.set_dt(7e-5);
      for (int s = 0; s < 2; ++s) dns.step();
      auto& out = cache ? cached : uncached;
      out = dns.mean_profile();
      out.push_back(dns.kinetic_energy());
    });
  }
  ASSERT_EQ(cached.size(), uncached.size());
  for (std::size_t i = 0; i < cached.size(); ++i)
    EXPECT_DOUBLE_EQ(cached[i], uncached[i]);
}

TEST(SolverCache, CflControllerRebuildsMatchUncached) {
  // With the CFL controller changing dt mid-run, the cached arenas are
  // rebuilt; the trajectory must match an uncached run exactly.
  std::vector<double> cached, uncached;
  for (bool cache : {true, false}) {
    auto cfg = cfg_small();
    cfg.cache_solvers = cache;
    cfg.dt = 2e-5;
    run_world(1, [&](communicator& world) {
      channel_dns dns(cfg, world);
      dns.initialize(0.1, 3);
      dns.set_cfl_target(0.4, 1e-6, 5e-3);
      for (int s = 0; s < 8; ++s) dns.step();
      auto& out = cache ? cached : uncached;
      out = dns.mean_profile();
      out.push_back(dns.kinetic_energy());
      out.push_back(dns.dt());
    });
  }
  ASSERT_EQ(cached.size(), uncached.size());
  for (std::size_t i = 0; i < cached.size(); ++i)
    EXPECT_DOUBLE_EQ(cached[i], uncached[i]);
}

TEST(AdaptiveDt, ControllerDrivesCflTowardTarget) {
  run_world(1, [&](communicator& world) {
    auto cfg = cfg_small();
    cfg.dt = 1e-5;  // start far below the target
    channel_dns dns(cfg, world);
    dns.initialize(0.1);
    dns.set_cfl_target(0.5, 1e-6, 1e-2);
    for (int s = 0; s < 40; ++s) dns.step();
    EXPECT_GT(dns.dt(), 1e-5);          // controller increased dt
    EXPECT_NEAR(dns.cfl(), 0.5, 0.25);  // and tracks the target loosely
  });
}

TEST(AdaptiveDt, ControllerRespectsBounds) {
  run_world(1, [&](communicator& world) {
    auto cfg = cfg_small();
    cfg.dt = 1e-4;
    channel_dns dns(cfg, world);
    dns.initialize(0.1);
    dns.set_cfl_target(100.0, 1e-5, 2e-4);  // absurd target -> clamp at max
    for (int s = 0; s < 10; ++s) dns.step();
    EXPECT_LE(dns.dt(), 2e-4 + 1e-15);
  });
}

TEST(AdaptiveDt, RejectsBadArguments) {
  run_world(1, [&](communicator& world) {
    channel_dns dns(cfg_small(), world);
    EXPECT_THROW(dns.set_dt(0.0), pcf::precondition_error);
    EXPECT_THROW(dns.set_cfl_target(1.0, 0.0, 1.0), pcf::precondition_error);
    EXPECT_THROW(dns.set_cfl_target(1.0, 1e-3, 1e-4), pcf::precondition_error);
  });
}

}  // namespace
