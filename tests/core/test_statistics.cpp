#include <gtest/gtest.h>

#include <vector>

#include "core/statistics.hpp"

namespace {

using pcf::core::profile_accumulator;
using pcf::vmpi::communicator;
using pcf::vmpi::run_world;

TEST(Statistics, ConstantFieldHasZeroVariance) {
  run_world(1, [&](communicator& world) {
    const std::size_t nz = 3, ny = 4, nx = 8;
    profile_accumulator acc(ny, 0, ny);
    std::vector<double> u(nz * ny * nx, 2.0), v(nz * ny * nx, -1.0),
        w(nz * ny * nx, 0.5);
    acc.add_sample(u.data(), v.data(), w.data(), nz, ny, nx);
    std::vector<double> y{0.0, 0.3, 0.6, 1.0};
    auto p = acc.finalize(world, y, nz * nx);
    for (std::size_t i = 0; i < ny; ++i) {
      EXPECT_NEAR(p.u[i], 2.0, 1e-14);
      EXPECT_NEAR(p.uu[i], 0.0, 1e-12);
      EXPECT_NEAR(p.vv[i], 0.0, 1e-12);
      EXPECT_NEAR(p.uv[i], 0.0, 1e-12);
    }
    EXPECT_EQ(p.samples, 1);
  });
}

TEST(Statistics, KnownMomentsOfAlternatingField) {
  run_world(1, [&](communicator& world) {
    const std::size_t nz = 1, ny = 2, nx = 4;
    profile_accumulator acc(ny, 0, ny);
    // u alternates +-1 -> mean 0, variance 1; v = u -> <uv> = 1.
    std::vector<double> u(nz * ny * nx), v(nz * ny * nx), w(nz * ny * nx, 0.0);
    for (std::size_t i = 0; i < u.size(); ++i) u[i] = (i % 2 == 0) ? 1.0 : -1.0;
    v = u;
    acc.add_sample(u.data(), v.data(), w.data(), nz, ny, nx);
    std::vector<double> y{0.0, 1.0};
    auto p = acc.finalize(world, y, nz * nx);
    for (std::size_t i = 0; i < ny; ++i) {
      EXPECT_NEAR(p.u[i], 0.0, 1e-14);
      EXPECT_NEAR(p.uu[i], 1.0, 1e-14);
      EXPECT_NEAR(p.uv[i], 1.0, 1e-14);
      EXPECT_NEAR(p.ww[i], 0.0, 1e-14);
    }
  });
}

TEST(Statistics, MultipleSamplesAverage) {
  run_world(1, [&](communicator& world) {
    const std::size_t nz = 1, ny = 1, nx = 2;
    profile_accumulator acc(ny, 0, ny);
    std::vector<double> zero(nx, 0.0);
    std::vector<double> a{1.0, 1.0}, b{3.0, 3.0};
    acc.add_sample(a.data(), zero.data(), zero.data(), nz, ny, nx);
    acc.add_sample(b.data(), zero.data(), zero.data(), nz, ny, nx);
    std::vector<double> y{0.0};
    auto p = acc.finalize(world, y, nx);
    EXPECT_NEAR(p.u[0], 2.0, 1e-14);   // (1 + 3) / 2
    EXPECT_NEAR(p.uu[0], 1.0, 1e-14);  // E[u^2] - E[u]^2 = 5 - 4
    EXPECT_EQ(p.samples, 2);
  });
}

TEST(Statistics, DistributedRanksCombineIntoGlobalProfile) {
  // 2 ranks each own half the y points; the reduced profile must contain
  // both halves.
  run_world(2, [&](communicator& world) {
    const std::size_t ny_global = 4, ny_local = 2, nz = 1, nx = 4;
    profile_accumulator acc(ny_local, world.rank() * ny_local, ny_global);
    std::vector<double> u(nz * ny_local * nx),
        zero(nz * ny_local * nx, 0.0);
    for (std::size_t y = 0; y < ny_local; ++y)
      for (std::size_t x = 0; x < nx; ++x)
        u[y * nx + x] = static_cast<double>(world.rank() * ny_local + y);
    acc.add_sample(u.data(), zero.data(), zero.data(), nz, ny_local, nx);
    std::vector<double> ypts{0.0, 0.25, 0.5, 0.75};
    auto p = acc.finalize(world, ypts, nx);
    for (std::size_t i = 0; i < ny_global; ++i)
      EXPECT_NEAR(p.u[i], static_cast<double>(i), 1e-14);
  });
}

TEST(Statistics, ResetClearsState) {
  run_world(1, [&](communicator& world) {
    profile_accumulator acc(1, 0, 1);
    std::vector<double> a{5.0};
    acc.add_sample(a.data(), a.data(), a.data(), 1, 1, 1);
    acc.reset();
    EXPECT_EQ(acc.samples(), 0);
    acc.add_sample(a.data(), a.data(), a.data(), 1, 1, 1);
    std::vector<double> y{0.0};
    auto p = acc.finalize(world, y, 1);
    EXPECT_NEAR(p.u[0], 5.0, 1e-14);
  });
}

}  // namespace
