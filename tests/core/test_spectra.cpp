#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/simulation.hpp"

namespace {

using pcf::core::channel_config;
using pcf::core::channel_dns;
using pcf::vmpi::communicator;
using pcf::vmpi::run_world;

channel_config cfg_small() {
  channel_config cfg;
  cfg.nx = 16;
  cfg.nz = 16;
  cfg.ny = 24;
  cfg.dt = 1e-4;
  return cfg;
}

TEST(Spectra, LaminarFlowHasNoFluctuationEnergy) {
  run_world(1, [&](communicator& world) {
    channel_dns dns(cfg_small(), world);
    dns.initialize(0.0);
    auto sx = dns.streamwise_spectra(10);
    for (double e : sx.euu) EXPECT_EQ(e, 0.0);
    for (double e : sx.evv) EXPECT_EQ(e, 0.0);
    auto sz = dns.spanwise_spectra(10);
    for (double e : sz.eww) EXPECT_EQ(e, 0.0);
  });
}

TEST(Spectra, ParsevalSumMatchesPhysicalPlaneVariance) {
  // Sum of the streamwise spectrum over kx = fluctuation variance on the
  // x-z plane at that y (computed independently in physical space).
  run_world(1, [&](communicator& world) {
    auto cfg = cfg_small();
    channel_dns dns(cfg, world);
    dns.initialize(0.2, 3);
    dns.step();
    const int yi = 12;
    auto s = dns.streamwise_spectra(yi);
    const double sum_uu = std::accumulate(s.euu.begin(), s.euu.end(), 0.0);
    const double sum_vv = std::accumulate(s.evv.begin(), s.evv.end(), 0.0);

    std::vector<double> u, v, w;
    dns.physical_velocity(u, v, w);
    const auto& d = dns.dec();
    double mu = 0, muu = 0, mv = 0, mvv = 0;
    std::size_t count = 0;
    for (std::size_t z = 0; z < d.zp.count; ++z)
      for (std::size_t x = 0; x < d.nxf; ++x) {
        const double uu = u[(z * d.yb.count + yi) * d.nxf + x];
        const double vv = v[(z * d.yb.count + yi) * d.nxf + x];
        mu += uu;
        muu += uu * uu;
        mv += vv;
        mvv += vv * vv;
        ++count;
      }
    mu /= count;
    muu = muu / count - mu * mu;
    mv /= count;
    mvv = mvv / count - mv * mv;
    EXPECT_NEAR(sum_uu, muu, 1e-8 * std::max(1.0, muu));
    EXPECT_NEAR(sum_vv, mvv, 1e-8 * std::max(1.0, mvv));
  });
}

TEST(Spectra, IndependentOfDecomposition) {
  auto cfg = cfg_small();
  std::vector<double> ref;
  for (auto [pa, pb] : {std::pair{1, 1}, std::pair{2, 2}}) {
    cfg.pa = pa;
    cfg.pb = pb;
    std::vector<double> got;
    std::mutex m;
    run_world(pa * pb, [&](communicator& world) {
      channel_dns dns(cfg, world);
      dns.initialize(0.1, 9);
      dns.step();
      auto s = dns.spanwise_spectra(8);
      if (world.rank() == 0) {
        std::lock_guard<std::mutex> lk(m);
        got = s.euu;
      }
    });
    if (ref.empty()) {
      ref = got;
    } else {
      ASSERT_EQ(ref.size(), got.size());
      for (std::size_t i = 0; i < ref.size(); ++i)
        EXPECT_NEAR(got[i], ref[i], 1e-12 * std::max(1.0, ref[i]));
    }
  }
}

TEST(Spectra, SinglePerturbationModeLandsInItsBin) {
  // Initialization puts energy only in |kx| <= 2, |kz| <= 2: the spectrum
  // must vanish beyond those bins.
  run_world(1, [&](communicator& world) {
    auto cfg = cfg_small();
    channel_dns dns(cfg, world);
    dns.initialize(0.3, 4);
    auto sx = dns.streamwise_spectra(12);
    auto sz = dns.spanwise_spectra(12);
    for (std::size_t k = 3; k < sx.euu.size(); ++k) {
      EXPECT_EQ(sx.euu[k], 0.0) << k;
      EXPECT_EQ(sx.evv[k], 0.0) << k;
    }
    for (std::size_t k = 3; k < sz.euu.size(); ++k)
      EXPECT_EQ(sz.euu[k], 0.0) << k;
    // ... and some energy in the low bins.
    EXPECT_GT(sx.evv[1] + sx.evv[2], 0.0);
  });
}

TEST(Spectra, RejectsBadYIndex) {
  run_world(1, [&](communicator& world) {
    channel_dns dns(cfg_small(), world);
    dns.initialize(0.0);
    EXPECT_THROW(dns.streamwise_spectra(-1), pcf::precondition_error);
    EXPECT_THROW(dns.streamwise_spectra(1000), pcf::precondition_error);
  });
}

}  // namespace
