#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "core/operators.hpp"

namespace {

using pcf::core::cplx;
using pcf::core::wall_normal_operators;

TEST(Operators, RoundTripPointsCoefficients) {
  wall_normal_operators ops(33, 7, 2.0);
  const auto& pts = ops.points();
  std::vector<double> vals(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) vals[i] = std::sin(2.0 * pts[i]);
  auto coef = vals;
  ops.to_coefficients(coef.data());
  std::vector<double> back(pts.size());
  ops.to_points(coef.data(), back.data());
  for (std::size_t i = 0; i < pts.size(); ++i)
    EXPECT_NEAR(back[i], vals[i], 1e-11);
}

TEST(Operators, ComplexInterpolation) {
  wall_normal_operators ops(30, 7, 1.5);
  const auto& pts = ops.points();
  std::vector<cplx> vals(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i)
    vals[i] = cplx{std::cos(pts[i]), std::sin(3.0 * pts[i])};
  auto coef = vals;
  ops.to_coefficients(coef.data());
  std::vector<cplx> back(pts.size());
  ops.to_points(coef.data(), back.data());
  for (std::size_t i = 0; i < pts.size(); ++i)
    EXPECT_LT(std::abs(back[i] - vals[i]), 1e-11);
}

TEST(Operators, DerivativesOfInterpolatedSine) {
  wall_normal_operators ops(49, 7, 2.0);
  const auto& pts = ops.points();
  std::vector<double> c(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) c[i] = std::sin(2.0 * pts[i]);
  ops.to_coefficients(c.data());
  std::vector<double> d1(pts.size()), d2(pts.size());
  ops.deriv1_points(c.data(), d1.data());
  ops.deriv2_points(c.data(), d2.data());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_NEAR(d1[i], 2.0 * std::cos(2.0 * pts[i]), 1e-6);
    EXPECT_NEAR(d2[i], -4.0 * std::sin(2.0 * pts[i]), 1e-4);
  }
}

TEST(Operators, WallDerivativeWeights) {
  wall_normal_operators ops(33, 7, 2.0);
  const auto& pts = ops.points();
  std::vector<double> c(pts.size());
  // f = y^3 - y: f'(-1) = 2, f'(1) = 2.
  for (std::size_t i = 0; i < pts.size(); ++i)
    c[i] = pts[i] * pts[i] * pts[i] - pts[i];
  ops.to_coefficients(c.data());
  EXPECT_NEAR(ops.dspline_lower(c.data()), 2.0, 1e-10);
  EXPECT_NEAR(ops.dspline_upper(c.data()), 2.0, 1e-10);
}

TEST(Operators, HelmholtzSolveMatchesAnalytic) {
  // [I - c (D^2 - k2)] u = f with u = (1 - y^2): D^2 u = -2, so
  // f = (1 + c k2)(1 - y^2) + 2 c. Dirichlet u(+-1) = 0 holds.
  wall_normal_operators ops(33, 7, 1.8);
  const double c = 0.01, k2 = 5.0;
  auto M = ops.helmholtz(c, k2);
  M.factorize();
  const auto& pts = ops.points();
  std::vector<double> rhs(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const double y = pts[i];
    rhs[i] = (1.0 + c * k2) * (1.0 - y * y) + 2.0 * c;
  }
  rhs.front() = 0.0;
  rhs.back() = 0.0;
  M.solve(rhs.data());
  std::vector<double> back(pts.size());
  ops.to_points(rhs.data(), back.data());
  for (std::size_t i = 0; i < pts.size(); ++i)
    EXPECT_NEAR(back[i], 1.0 - pts[i] * pts[i], 1e-10);
}

TEST(Operators, PoissonSolveMatchesAnalytic) {
  // (D^2 - k2) u = f with u = sin(pi y): f = -(pi^2 + k2) sin(pi y).
  wall_normal_operators ops(49, 7, 1.5);
  const double k2 = 3.0;
  auto M = ops.poisson(k2);
  M.factorize();
  const auto& pts = ops.points();
  const double pi = std::numbers::pi;
  std::vector<double> rhs(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i)
    rhs[i] = -(pi * pi + k2) * std::sin(pi * pts[i]);
  rhs.front() = 0.0;
  rhs.back() = 0.0;
  M.solve(rhs.data());
  std::vector<double> back(pts.size());
  ops.to_points(rhs.data(), back.data());
  for (std::size_t i = 0; i < pts.size(); ++i)
    EXPECT_NEAR(back[i], std::sin(pi * pts[i]), 1e-8);
}

TEST(Operators, RhsOperatorIsConsistentWithHelmholtz) {
  // For any x: helmholtz(c) x + [rhs_op(-c)] ... more directly:
  // [A0 - c(A2 - k2 A0)] and [A0 + c(A2 - k2 A0)] applied to the same
  // coefficients must average to A0 x.
  wall_normal_operators ops(30, 7, 2.0);
  const double c = 0.02, k2 = 7.0;
  const std::size_t n = static_cast<std::size_t>(ops.n());
  std::vector<cplx> x(n), plus(n), a0x(n);
  for (std::size_t i = 0; i < n; ++i)
    x[i] = cplx{std::sin(0.1 * i), std::cos(0.2 * i)};
  ops.apply_rhs_operator(c, k2, x.data(), plus.data());
  ops.apply_rhs_operator(-c, k2, x.data(), a0x.data());
  std::vector<cplx> avg(n), direct(n);
  for (std::size_t i = 0; i < n; ++i) avg[i] = 0.5 * (plus[i] + a0x[i]);
  ops.to_points(x.data(), direct.data());
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_LT(std::abs(avg[i] - direct[i]), 1e-11);
}

TEST(Operators, RejectsTooFewPoints) {
  EXPECT_THROW(wall_normal_operators(20, 7, 2.0), pcf::precondition_error);
}

}  // namespace
