#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>

#include "core/runner.hpp"
#include "io/atomic_file.hpp"

namespace {

using pcf::core::channel_config;
using pcf::core::channel_dns;
using pcf::core::run_campaign;
using pcf::core::run_plan;
using pcf::vmpi::communicator;
using pcf::vmpi::run_world;

channel_config cfg_small() {
  channel_config cfg;
  cfg.nx = 8;
  cfg.nz = 8;
  cfg.ny = 24;
  cfg.dt = 1e-3;
  return cfg;
}

TEST(Runner, FlowThroughTimeFromBulkVelocity) {
  run_world(1, [&](communicator& world) {
    channel_dns dns(cfg_small(), world);
    dns.initialize(0.0);
    // Laminar: U_b = Re/3 = 60, Lx = 4 pi -> t_ft = 4 pi / 60.
    EXPECT_NEAR(pcf::core::flow_through_time(dns),
                4.0 * 3.14159265358979 / 60.0, 1e-6);
  });
}

TEST(Runner, RunsRequestedDurationAndSamplesStats) {
  run_world(1, [&](communicator& world) {
    channel_dns dns(cfg_small(), world);
    dns.initialize(0.1);
    const double t_ft = pcf::core::flow_through_time(dns);
    run_plan plan;
    plan.flow_throughs = 0.05;  // keep it quick
    plan.warmup_fraction = 0.5;
    plan.stats_every = 2;
    plan.diag_every = 5;
    auto rep = run_campaign(dns, world, plan);
    EXPECT_FALSE(rep.hit_time_budget);
    EXPECT_NEAR(dns.time(), 0.05 * t_ft, cfg_small().dt + 1e-12);
    EXPECT_GT(rep.steps_run, 0);
    EXPECT_GT(rep.profiles.samples, 0);
    // Statistics must only come from after the warmup (~half the steps,
    // every 2nd step).
    EXPECT_LE(rep.profiles.samples, rep.steps_run / 2 / 2 + 2);
    EXPECT_EQ(static_cast<long>(rep.series.size()), rep.steps_run / 5);
  });
}

TEST(Runner, DiagnosticsSeriesIsMonotone) {
  run_world(1, [&](communicator& world) {
    channel_dns dns(cfg_small(), world);
    dns.initialize(0.05);
    run_plan plan;
    plan.flow_throughs = 0.03;
    plan.diag_every = 3;
    plan.stats_every = 0;
    int callbacks = 0;
    auto rep = run_campaign(dns, world, plan,
                            [&](const pcf::core::diag_sample&) { ++callbacks; });
    ASSERT_GE(rep.series.size(), 2u);
    EXPECT_EQ(callbacks, static_cast<int>(rep.series.size()));
    for (std::size_t i = 1; i < rep.series.size(); ++i) {
      EXPECT_GT(rep.series[i].step, rep.series[i - 1].step);
      EXPECT_GT(rep.series[i].time, rep.series[i - 1].time);
    }
    for (const auto& d : rep.series) {
      EXPECT_TRUE(std::isfinite(d.kinetic_energy));
      EXPECT_GT(d.bulk_velocity, 0.0);
    }
  });
}

TEST(Runner, WallClockBudgetStopsEarly) {
  run_world(1, [&](communicator& world) {
    channel_dns dns(cfg_small(), world);
    dns.initialize(0.0);
    run_plan plan;
    plan.flow_throughs = 1e6;  // absurdly long
    plan.max_seconds = 0.2;
    auto rep = run_campaign(dns, world, plan);
    EXPECT_TRUE(rep.hit_time_budget);
    EXPECT_GT(rep.steps_run, 0);
  });
}

void remove_generations(const std::string& prefix) {
  for (long g : pcf::io::list_generations(prefix, ".0"))
    std::remove((pcf::io::generation_path(prefix, g) + ".0").c_str());
  std::remove((prefix + ".blowup.txt").c_str());
}

TEST(Runner, CheckpointsOnCadenceWithRotation) {
  const std::string path = ::testing::TempDir() + "/pcf_runner_ckpt";
  run_world(1, [&](communicator& world) {
    channel_dns dns(cfg_small(), world);
    dns.initialize(0.05);
    run_plan plan;
    plan.flow_throughs = 0.03;
    plan.checkpoint_every = 4;
    plan.checkpoint_keep = 2;
    plan.checkpoint_path = path;
    auto rep = run_campaign(dns, world, plan);
    EXPECT_EQ(rep.checkpoints_written, rep.steps_run / 4);
    // Rotation keeps exactly the newest two generations, named by step.
    auto gens = pcf::io::list_generations(path, ".0");
    ASSERT_EQ(gens.size(), 2u);
    EXPECT_EQ(gens.back(), (rep.steps_run / 4) * 4);
    EXPECT_EQ(gens.front(), gens.back() - 4);
    std::ifstream is(pcf::io::generation_path(path, gens.back()) + ".0",
                     std::ios::binary);
    EXPECT_TRUE(is.good());
  });
  remove_generations(path);
}

TEST(Runner, ResumeOrInitializeRestoresNewestGeneration) {
  const std::string path = ::testing::TempDir() + "/pcf_resume_ckpt";
  run_world(1, [&](communicator& world) {
    channel_dns dns(cfg_small(), world);
    // No checkpoints on disk yet: must fall back to initialize().
    EXPECT_EQ(pcf::core::resume_or_initialize(dns, world, path, 0.05), -1);
    run_plan plan;
    plan.flow_throughs = 0.02;
    plan.checkpoint_every = 4;
    plan.checkpoint_keep = 2;
    plan.checkpoint_path = path;
    auto rep = run_campaign(dns, world, plan);
    ASSERT_GT(rep.checkpoints_written, 0);
    const double t_saved = dns.time();

    channel_dns dns2(cfg_small(), world);
    const long g = pcf::core::resume_or_initialize(dns2, world, path, 0.05);
    EXPECT_EQ(g, (rep.steps_run / 4) * 4);
    // The newest generation was written at the last multiple of 4 steps.
    EXPECT_NEAR(dns2.time(), t_saved,
                4 * cfg_small().dt + 1e-12);
  });
  remove_generations(path);
}

TEST(Runner, FallsBackToOlderGenerationWhenNewestCorrupt) {
  const std::string path = ::testing::TempDir() + "/pcf_fallback_ckpt";
  run_world(1, [&](communicator& world) {
    channel_dns dns(cfg_small(), world);
    dns.initialize(0.05);
    run_plan plan;
    plan.flow_throughs = 0.02;
    plan.checkpoint_every = 4;
    plan.checkpoint_keep = 2;
    plan.checkpoint_path = path;
    run_campaign(dns, world, plan);
    auto gens = pcf::io::list_generations(path, ".0");
    ASSERT_EQ(gens.size(), 2u);
    // Flip one payload byte in the newest generation: its section CRC must
    // reject it and the loader must fall back to the older one.
    const std::string newest =
        pcf::io::generation_path(path, gens.back()) + ".0";
    {
      std::fstream f(newest, std::ios::in | std::ios::out | std::ios::binary);
      ASSERT_TRUE(f.good());
      f.seekp(-64, std::ios::end);
      char c = 0;
      f.seekg(f.tellp());
      f.get(c);
      f.seekp(-1, std::ios::cur);
      f.put(static_cast<char>(c ^ 1));
    }
    channel_dns dns2(cfg_small(), world);
    EXPECT_EQ(pcf::core::restore_newest_generation(dns2, world, path),
              gens.front());
  });
  remove_generations(path);
}

TEST(Runner, RecoversFromBlowupWithReducedDt) {
  const std::string path = ::testing::TempDir() + "/pcf_recover_ckpt";
  run_world(1, [&](communicator& world) {
    channel_dns dns(cfg_small(), world);
    dns.initialize(0.05);
    // Phase 1: a stable segment that leaves rotated checkpoints behind.
    run_plan plan;
    plan.flow_throughs = 0.02;
    plan.checkpoint_every = 4;
    plan.checkpoint_keep = 2;
    plan.checkpoint_path = path;
    auto rep1 = run_campaign(dns, world, plan);
    ASSERT_GT(rep1.checkpoints_written, 0);
    EXPECT_FALSE(rep1.went_nonfinite);

    // Phase 2: "kill" the run deterministically — at the first diagnostic,
    // overscale the mean profile so the energy overflows to inf at the
    // next one. The runner must detect the blow-up, restore the newest
    // good generation, scale dt down, and complete the (short) campaign.
    plan.checkpoint_every = 0;  // keep phase-1 generations untouched
    plan.diag_every = 1;
    plan.max_blowup_retries = 3;
    plan.retry_dt_factor = 0.5;
    plan.max_seconds = 60.0;  // backstop
    bool poisoned_once = false;
    auto rep2 = run_campaign(dns, world, plan,
                             [&](const pcf::core::diag_sample&) {
                               if (poisoned_once) return;
                               poisoned_once = true;
                               auto profile = dns.mean_profile();
                               for (std::size_t i = 1; i + 1 < profile.size();
                                    ++i)
                                 profile[i] *= 1e160;
                               dns.set_mean_profile(profile);
                             });
    EXPECT_GE(rep2.blowup_recoveries, 1);
    EXPECT_GE(rep2.restored_generation, 0);
    EXPECT_FALSE(rep2.went_nonfinite);
    EXPECT_FALSE(rep2.hit_time_budget);
    EXPECT_TRUE(rep2.wrote_report);
    EXPECT_NEAR(dns.dt(), 0.5 * cfg_small().dt, 1e-15);

    // The report names the restored generation and the comm statistics.
    std::ifstream is(path + ".blowup.txt");
    ASSERT_TRUE(is.good());
    std::string text((std::istreambuf_iterator<char>(is)),
                     std::istreambuf_iterator<char>());
    EXPECT_NE(text.find("vmpi comm stats"), std::string::npos);
    EXPECT_NE(text.find("restored generation"), std::string::npos);
  });
  remove_generations(path);
}

TEST(Runner, BlowupWithoutRetriesWritesReportAndHalts) {
  const std::string path = ::testing::TempDir() + "/pcf_noretry_ckpt";
  run_world(1, [&](communicator& world) {
    auto cfg = cfg_small();
    cfg.dt = 1.0;  // wildly unstable
    channel_dns dns(cfg, world);
    dns.initialize(0.3);
    run_plan plan;
    plan.flow_throughs = 10.0;
    plan.diag_every = 1;
    plan.checkpoint_path = path;  // gives the report its default path
    plan.max_seconds = 30.0;      // backstop
    auto rep = run_campaign(dns, world, plan);
    ASSERT_TRUE(rep.went_nonfinite);
    EXPECT_EQ(rep.blowup_recoveries, 0);
    EXPECT_TRUE(rep.wrote_report);
    std::ifstream is(path + ".blowup.txt");
    ASSERT_TRUE(is.good());
    std::string text((std::istreambuf_iterator<char>(is)),
                     std::istreambuf_iterator<char>());
    EXPECT_NE(text.find("halting (recovery disabled)"), std::string::npos);
  });
  remove_generations(path);
}

TEST(Runner, SeriesCsvRoundTrips) {
  const std::string path = ::testing::TempDir() + "/pcf_series.csv";
  std::vector<pcf::core::diag_sample> series(3);
  for (int i = 0; i < 3; ++i) {
    series[static_cast<std::size_t>(i)].step = 10 * (i + 1);
    series[static_cast<std::size_t>(i)].time = 0.1 * (i + 1);
    series[static_cast<std::size_t>(i)].bulk_velocity = 15.0 + i;
  }
  pcf::core::write_series_csv(path, series);
  std::ifstream is(path);
  std::string header, l1;
  std::getline(is, header);
  std::getline(is, l1);
  EXPECT_EQ(header, "step,time,bulk_velocity,kinetic_energy,wall_shear,cfl");
  EXPECT_EQ(l1.substr(0, 3), "10,");
  std::remove(path.c_str());
}

TEST(Runner, HaltsOnBlowup) {
  // A grossly unstable configuration (huge dt) must be caught by the
  // non-finite monitor instead of running to the end.
  run_world(1, [&](communicator& world) {
    auto cfg = cfg_small();
    cfg.dt = 1.0;  // wildly unstable
    channel_dns dns(cfg, world);
    dns.initialize(0.3);
    run_plan plan;
    plan.flow_throughs = 10.0;
    plan.diag_every = 1;
    plan.max_seconds = 30.0;  // backstop
    auto rep = run_campaign(dns, world, plan);
    EXPECT_TRUE(rep.went_nonfinite || rep.hit_time_budget);
    if (rep.went_nonfinite) {
      EXPECT_LT(rep.steps_run, 10000);
    }
  });
}

TEST(Runner, RejectsBadPlans) {
  run_world(1, [&](communicator& world) {
    channel_dns dns(cfg_small(), world);
    dns.initialize(0.0);
    run_plan plan;
    plan.flow_throughs = -1.0;
    EXPECT_THROW(run_campaign(dns, world, plan), pcf::precondition_error);
    plan.flow_throughs = 0.01;
    plan.checkpoint_every = 1;  // no path
    EXPECT_THROW(run_campaign(dns, world, plan), pcf::precondition_error);
  });
}

}  // namespace
