#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/runner.hpp"

namespace {

using pcf::core::channel_config;
using pcf::core::channel_dns;
using pcf::core::run_campaign;
using pcf::core::run_plan;
using pcf::vmpi::communicator;
using pcf::vmpi::run_world;

channel_config cfg_small() {
  channel_config cfg;
  cfg.nx = 8;
  cfg.nz = 8;
  cfg.ny = 24;
  cfg.dt = 1e-3;
  return cfg;
}

TEST(Runner, FlowThroughTimeFromBulkVelocity) {
  run_world(1, [&](communicator& world) {
    channel_dns dns(cfg_small(), world);
    dns.initialize(0.0);
    // Laminar: U_b = Re/3 = 60, Lx = 4 pi -> t_ft = 4 pi / 60.
    EXPECT_NEAR(pcf::core::flow_through_time(dns),
                4.0 * 3.14159265358979 / 60.0, 1e-6);
  });
}

TEST(Runner, RunsRequestedDurationAndSamplesStats) {
  run_world(1, [&](communicator& world) {
    channel_dns dns(cfg_small(), world);
    dns.initialize(0.1);
    const double t_ft = pcf::core::flow_through_time(dns);
    run_plan plan;
    plan.flow_throughs = 0.05;  // keep it quick
    plan.warmup_fraction = 0.5;
    plan.stats_every = 2;
    plan.diag_every = 5;
    auto rep = run_campaign(dns, world, plan);
    EXPECT_FALSE(rep.hit_time_budget);
    EXPECT_NEAR(dns.time(), 0.05 * t_ft, cfg_small().dt + 1e-12);
    EXPECT_GT(rep.steps_run, 0);
    EXPECT_GT(rep.profiles.samples, 0);
    // Statistics must only come from after the warmup (~half the steps,
    // every 2nd step).
    EXPECT_LE(rep.profiles.samples, rep.steps_run / 2 / 2 + 2);
    EXPECT_EQ(static_cast<long>(rep.series.size()), rep.steps_run / 5);
  });
}

TEST(Runner, DiagnosticsSeriesIsMonotone) {
  run_world(1, [&](communicator& world) {
    channel_dns dns(cfg_small(), world);
    dns.initialize(0.05);
    run_plan plan;
    plan.flow_throughs = 0.03;
    plan.diag_every = 3;
    plan.stats_every = 0;
    int callbacks = 0;
    auto rep = run_campaign(dns, world, plan,
                            [&](const pcf::core::diag_sample&) { ++callbacks; });
    ASSERT_GE(rep.series.size(), 2u);
    EXPECT_EQ(callbacks, static_cast<int>(rep.series.size()));
    for (std::size_t i = 1; i < rep.series.size(); ++i) {
      EXPECT_GT(rep.series[i].step, rep.series[i - 1].step);
      EXPECT_GT(rep.series[i].time, rep.series[i - 1].time);
    }
    for (const auto& d : rep.series) {
      EXPECT_TRUE(std::isfinite(d.kinetic_energy));
      EXPECT_GT(d.bulk_velocity, 0.0);
    }
  });
}

TEST(Runner, WallClockBudgetStopsEarly) {
  run_world(1, [&](communicator& world) {
    channel_dns dns(cfg_small(), world);
    dns.initialize(0.0);
    run_plan plan;
    plan.flow_throughs = 1e6;  // absurdly long
    plan.max_seconds = 0.2;
    auto rep = run_campaign(dns, world, plan);
    EXPECT_TRUE(rep.hit_time_budget);
    EXPECT_GT(rep.steps_run, 0);
  });
}

TEST(Runner, CheckpointsOnCadence) {
  const std::string path = ::testing::TempDir() + "/pcf_runner_ckpt";
  run_world(1, [&](communicator& world) {
    channel_dns dns(cfg_small(), world);
    dns.initialize(0.05);
    run_plan plan;
    plan.flow_throughs = 0.03;
    plan.checkpoint_every = 4;
    plan.checkpoint_path = path;
    auto rep = run_campaign(dns, world, plan);
    EXPECT_EQ(rep.checkpoints_written, rep.steps_run / 4);
    std::ifstream is(path + ".0", std::ios::binary);
    EXPECT_TRUE(is.good());
  });
  std::remove((path + ".0").c_str());
}

TEST(Runner, SeriesCsvRoundTrips) {
  const std::string path = ::testing::TempDir() + "/pcf_series.csv";
  std::vector<pcf::core::diag_sample> series(3);
  for (int i = 0; i < 3; ++i) {
    series[static_cast<std::size_t>(i)].step = 10 * (i + 1);
    series[static_cast<std::size_t>(i)].time = 0.1 * (i + 1);
    series[static_cast<std::size_t>(i)].bulk_velocity = 15.0 + i;
  }
  pcf::core::write_series_csv(path, series);
  std::ifstream is(path);
  std::string header, l1;
  std::getline(is, header);
  std::getline(is, l1);
  EXPECT_EQ(header, "step,time,bulk_velocity,kinetic_energy,wall_shear,cfl");
  EXPECT_EQ(l1.substr(0, 3), "10,");
  std::remove(path.c_str());
}

TEST(Runner, HaltsOnBlowup) {
  // A grossly unstable configuration (huge dt) must be caught by the
  // non-finite monitor instead of running to the end.
  run_world(1, [&](communicator& world) {
    auto cfg = cfg_small();
    cfg.dt = 1.0;  // wildly unstable
    channel_dns dns(cfg, world);
    dns.initialize(0.3);
    run_plan plan;
    plan.flow_throughs = 10.0;
    plan.diag_every = 1;
    plan.max_seconds = 30.0;  // backstop
    auto rep = run_campaign(dns, world, plan);
    EXPECT_TRUE(rep.went_nonfinite || rep.hit_time_budget);
    if (rep.went_nonfinite) EXPECT_LT(rep.steps_run, 10000);
  });
}

TEST(Runner, RejectsBadPlans) {
  run_world(1, [&](communicator& world) {
    channel_dns dns(cfg_small(), world);
    dns.initialize(0.0);
    run_plan plan;
    plan.flow_throughs = -1.0;
    EXPECT_THROW(run_campaign(dns, world, plan), pcf::precondition_error);
    plan.flow_throughs = 0.01;
    plan.checkpoint_every = 1;  // no path
    EXPECT_THROW(run_campaign(dns, world, plan), pcf::precondition_error);
  });
}

}  // namespace
