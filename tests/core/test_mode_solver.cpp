#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

#include "core/mode_solver.hpp"
#include "util/thread_pool.hpp"

namespace {

using pcf::core::cplx;
using pcf::core::mode_solver;
using pcf::core::wall_normal_operators;

TEST(ModeSolver, DirichletSolveMatchesManufactured) {
  // [I - c(D^2 - k2)] u = f, u = (1 - y^2) sin(y).
  wall_normal_operators ops(49, 7, 1.5);
  const double c = 0.005, k2 = 10.0;
  mode_solver ms(ops, c, k2);
  const auto& pts = ops.points();
  const std::size_t n = pts.size();
  auto u = [](double y) { return (1.0 - y * y) * std::sin(y); };
  auto upp = [](double y) {
    // d^2/dy^2 [(1-y^2) sin y] = -2 sin y - 4 y cos y - (1-y^2) sin y
    return -2.0 * std::sin(y) - 4.0 * y * std::cos(y) -
           (1.0 - y * y) * std::sin(y);
  };
  std::vector<cplx> rhs(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double y = pts[i];
    rhs[i] = u(y) - c * (upp(y) - k2 * u(y));
  }
  ms.solve_dirichlet(rhs.data());
  std::vector<cplx> back(n);
  ops.to_points(rhs.data(), back.data());
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_LT(std::abs(back[i] - u(pts[i])), 1e-8);
}

TEST(ModeSolver, PhiVSolutionSatisfiesAllBoundaryConditions) {
  wall_normal_operators ops(49, 7, 2.0);
  const double c = 0.01, k2 = 4.0;
  mode_solver ms(ops, c, k2);
  const auto& pts = ops.points();
  const std::size_t n = pts.size();
  std::vector<cplx> rhs(n), c_phi(n), c_v(n);
  for (std::size_t i = 0; i < n; ++i)
    rhs[i] = cplx{std::sin(2.0 * pts[i]), std::cos(pts[i])};
  ms.solve_phi_v(rhs.data(), c_phi.data(), c_v.data());
  // v(+-1) = 0: clamped ends interpolate the end coefficients.
  EXPECT_LT(std::abs(c_v[0]), 1e-12);
  EXPECT_LT(std::abs(c_v[n - 1]), 1e-12);
  // v'(+-1) = 0: the influence correction's whole job.
  EXPECT_LT(std::abs(ops.dspline_lower(c_v.data())), 1e-9);
  EXPECT_LT(std::abs(ops.dspline_upper(c_v.data())), 1e-9);
}

TEST(ModeSolver, PhiVCouplingIsConsistent) {
  // After solve_phi_v, (D^2 - k2) v must equal phi at interior points.
  wall_normal_operators ops(40, 7, 2.0);
  const double c = 0.02, k2 = 9.0;
  mode_solver ms(ops, c, k2);
  const std::size_t n = static_cast<std::size_t>(ops.n());
  std::vector<cplx> rhs(n), c_phi(n), c_v(n);
  for (std::size_t i = 0; i < n; ++i)
    rhs[i] = cplx{std::cos(0.3 * i), std::sin(0.11 * i)};
  ms.solve_phi_v(rhs.data(), c_phi.data(), c_v.data());
  std::vector<cplx> lap(n), phi_pts(n), v2(n), v0(n);
  ops.deriv2_points(c_v.data(), v2.data());
  ops.to_points(c_v.data(), v0.data());
  ops.to_points(c_phi.data(), phi_pts.data());
  for (std::size_t i = 1; i + 1 < n; ++i) {
    const cplx want = v2[i] - k2 * v0[i];
    EXPECT_LT(std::abs(want - phi_pts[i]), 1e-8) << i;
  }
}

TEST(ModeSolver, PhiEquationHoldsAtInteriorPoints) {
  // The corrected phi must still satisfy the Helmholtz equation at the
  // interior collocation points (the influence functions are homogeneous
  // solutions, so adding them cannot break it).
  wall_normal_operators ops(40, 7, 1.5);
  const double c = 0.015, k2 = 6.0;
  mode_solver ms(ops, c, k2);
  const std::size_t n = static_cast<std::size_t>(ops.n());
  std::vector<cplx> rhs(n), keep(n), c_phi(n), c_v(n);
  for (std::size_t i = 0; i < n; ++i) {
    rhs[i] = cplx{std::sin(0.2 * i + 0.4), std::cos(0.15 * i)};
    keep[i] = rhs[i];
  }
  ms.solve_phi_v(rhs.data(), c_phi.data(), c_v.data());
  std::vector<cplx> p0(n), p2(n);
  ops.to_points(c_phi.data(), p0.data());
  ops.deriv2_points(c_phi.data(), p2.data());
  for (std::size_t i = 1; i + 1 < n; ++i) {
    const cplx lhs = p0[i] - c * (p2[i] - k2 * p0[i]);
    EXPECT_LT(std::abs(lhs - keep[i]), 1e-8) << i;
  }
}

TEST(ModeSolver, LinearInRhs) {
  wall_normal_operators ops(33, 7, 2.0);
  mode_solver ms(ops, 0.01, 2.0);
  const std::size_t n = static_cast<std::size_t>(ops.n());
  std::vector<cplx> r1(n), r2(n), rsum(n);
  for (std::size_t i = 0; i < n; ++i) {
    r1[i] = cplx{std::sin(0.3 * i), 0.1};
    r2[i] = cplx{0.2, std::cos(0.2 * i)};
    rsum[i] = 2.0 * r1[i] - 3.0 * r2[i];
  }
  std::vector<cplx> p1(n), v1(n), p2(n), v2(n), ps(n), vs(n);
  ms.solve_phi_v(r1.data(), p1.data(), v1.data());
  ms.solve_phi_v(r2.data(), p2.data(), v2.data());
  ms.solve_phi_v(rsum.data(), ps.data(), vs.data());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_LT(std::abs(ps[i] - (2.0 * p1[i] - 3.0 * p2[i])), 1e-9);
    EXPECT_LT(std::abs(vs[i] - (2.0 * v1[i] - 3.0 * v2[i])), 1e-9);
  }
}

TEST(ModeSolver, RejectsZeroWavenumber) {
  wall_normal_operators ops(33, 7, 2.0);
  EXPECT_THROW(mode_solver(ops, 0.01, 0.0), pcf::precondition_error);
}

TEST(ModeSolver, FusedSolveBitIdenticalToSeparateSolves) {
  // solve_block fuses the omega and phi Helmholtz solves into one blocked
  // 2-RHS pass; results must be BIT-identical to the sequential path.
  wall_normal_operators ops(49, 7, 1.5);
  const double c = 0.008, k2 = 7.0;
  mode_solver ms(ops, c, k2);
  const std::size_t n = static_cast<std::size_t>(ops.n());
  std::vector<cplx> r_om(n), r_phi(n);
  for (std::size_t i = 0; i < n; ++i) {
    r_om[i] = cplx{std::sin(0.17 * i), std::cos(0.23 * i + 1.0)};
    r_phi[i] = cplx{std::cos(0.31 * i), std::sin(0.12 * i - 0.5)};
  }
  // Sequential path.
  std::vector<cplx> om_a(r_om), rhs_a(r_phi), phi_a(n), v_a(n);
  ms.solve_dirichlet(om_a.data());
  ms.solve_phi_v(rhs_a.data(), phi_a.data(), v_a.data());
  // Fused path.
  std::vector<cplx> panel(2 * n), om_b(n), phi_b(n), v_b(n);
  std::copy(r_om.begin(), r_om.end(), panel.begin());
  std::copy(r_phi.begin(), r_phi.end(),
            panel.begin() + static_cast<std::ptrdiff_t>(n));
  ms.solve_block(panel.data(), om_b.data(), phi_b.data(), v_b.data());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(om_a[i].real(), om_b[i].real()) << i;
    EXPECT_EQ(om_a[i].imag(), om_b[i].imag()) << i;
    EXPECT_EQ(phi_a[i].real(), phi_b[i].real()) << i;
    EXPECT_EQ(phi_a[i].imag(), phi_b[i].imag()) << i;
    EXPECT_EQ(v_a[i].real(), v_b[i].real()) << i;
    EXPECT_EQ(v_a[i].imag(), v_b[i].imag()) << i;
  }
}

TEST(SolverArena, MatchesStandaloneModeSolvers) {
  wall_normal_operators ops(40, 7, 2.0);
  const double c = 0.012;
  const std::vector<double> k2s = {0.0, 4.0, 9.0, 0.0, 25.0};
  pcf::thread_pool pool(2);
  pcf::core::solver_arena arena;
  arena.build(ops, c, k2s, pool);
  EXPECT_TRUE(arena.built());
  EXPECT_EQ(arena.coeff(), c);
  EXPECT_EQ(arena.modes(), 5);
  EXPECT_FALSE(arena.active(0));
  EXPECT_FALSE(arena.active(3));
  EXPECT_GT(arena.storage_bytes(), 0u);

  const std::size_t n = static_cast<std::size_t>(ops.n());
  for (int m : {1, 2, 4}) {
    ASSERT_TRUE(arena.active(m));
    mode_solver ms(ops, c, k2s[static_cast<std::size_t>(m)]);
    std::vector<cplx> panel(2 * n);
    for (std::size_t i = 0; i < 2 * n; ++i)
      panel[i] = cplx{std::sin(0.1 * i + m), std::cos(0.07 * i)};
    auto panel2 = panel;
    std::vector<cplx> om_a(n), phi_a(n), v_a(n), om_b(n), phi_b(n), v_b(n);
    ms.solve_block(panel.data(), om_a.data(), phi_a.data(), v_a.data());
    arena.solve_block(m, panel2.data(), om_b.data(), phi_b.data(),
                      v_b.data());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(om_a[i].real(), om_b[i].real()) << m << " " << i;
      EXPECT_EQ(om_a[i].imag(), om_b[i].imag()) << m << " " << i;
      EXPECT_EQ(phi_a[i].real(), phi_b[i].real()) << m << " " << i;
      EXPECT_EQ(phi_a[i].imag(), phi_b[i].imag()) << m << " " << i;
      EXPECT_EQ(v_a[i].real(), v_b[i].real()) << m << " " << i;
      EXPECT_EQ(v_a[i].imag(), v_b[i].imag()) << m << " " << i;
    }
  }
}

TEST(SolverArena, InactiveOrUnbuiltSlotThrows) {
  wall_normal_operators ops(33, 7, 2.0);
  pcf::thread_pool pool(1);
  pcf::core::solver_arena arena;
  const std::size_t n = static_cast<std::size_t>(ops.n());
  std::vector<cplx> panel(2 * n), om(n), phi(n), v(n);
  EXPECT_THROW(
      arena.solve_block(0, panel.data(), om.data(), phi.data(), v.data()),
      pcf::precondition_error);
  arena.build(ops, 0.01, {0.0, 4.0}, pool);
  EXPECT_THROW(
      arena.solve_block(0, panel.data(), om.data(), phi.data(), v.data()),
      pcf::precondition_error);
  EXPECT_THROW(
      arena.solve_block(7, panel.data(), om.data(), phi.data(), v.data()),
      pcf::precondition_error);
  EXPECT_NO_THROW(
      arena.solve_block(1, panel.data(), om.data(), phi.data(), v.data()));
  arena.clear();
  EXPECT_FALSE(arena.built());
  EXPECT_THROW(
      arena.solve_block(1, panel.data(), om.data(), phi.data(), v.data()),
      pcf::precondition_error);
}

TEST(SolverArena, RebuildAfterCoeffChangeMatchesColdConstruction) {
  // A dt change rebuilds arena contents in place; results must be
  // bit-identical to a freshly constructed arena at the new coefficient.
  wall_normal_operators ops(33, 7, 2.0);
  pcf::thread_pool pool(2);
  const std::vector<double> k2s = {0.0, 2.0, 8.0};
  pcf::core::solver_arena warm, cold;
  warm.build(ops, 0.02, k2s, pool);  // old dt
  warm.build(ops, 0.01, k2s, pool);  // rebuild at the new dt
  cold.build(ops, 0.01, k2s, pool);
  const std::size_t n = static_cast<std::size_t>(ops.n());
  for (int m : {1, 2}) {
    std::vector<cplx> panel(2 * n);
    for (std::size_t i = 0; i < 2 * n; ++i)
      panel[i] = cplx{std::cos(0.09 * i), std::sin(0.21 * i + m)};
    auto panel2 = panel;
    std::vector<cplx> om_a(n), phi_a(n), v_a(n), om_b(n), phi_b(n), v_b(n);
    warm.solve_block(m, panel.data(), om_a.data(), phi_a.data(), v_a.data());
    cold.solve_block(m, panel2.data(), om_b.data(), phi_b.data(),
                     v_b.data());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(om_a[i].real(), om_b[i].real());
      EXPECT_EQ(om_a[i].imag(), om_b[i].imag());
      EXPECT_EQ(phi_a[i].real(), phi_b[i].real());
      EXPECT_EQ(phi_a[i].imag(), phi_b[i].imag());
      EXPECT_EQ(v_a[i].real(), v_b[i].real());
      EXPECT_EQ(v_a[i].imag(), v_b[i].imag());
    }
  }
}

}  // namespace
