// Integration tests of the full channel DNS: exact steady states, analytic
// viscous decay, divergence-free evolution, symmetry preservation, and
// decomposition independence.
#include <gtest/gtest.h>

#include <cmath>
#include <mutex>
#include <numbers>

#include "core/simulation.hpp"

namespace {

using pcf::core::channel_config;
using pcf::core::channel_dns;
using pcf::vmpi::communicator;
using pcf::vmpi::run_world;

channel_config small_config() {
  channel_config cfg;
  cfg.nx = 8;
  cfg.nz = 8;
  cfg.ny = 24;
  cfg.re_tau = 180.0;
  cfg.dt = 1e-4;
  return cfg;
}

TEST(Dns, LaminarPoiseuilleIsExactSteadyState) {
  run_world(1, [&](communicator& world) {
    auto cfg = small_config();
    channel_dns dns(cfg, world);
    dns.initialize(0.0);
    const auto before = dns.mean_profile();
    const double ub0 = dns.bulk_velocity();
    EXPECT_NEAR(ub0, cfg.re_tau / 3.0, 1e-8);
    EXPECT_NEAR(dns.wall_shear_stress(), 1.0, 1e-9);
    for (int s = 0; s < 5; ++s) dns.step();
    const auto after = dns.mean_profile();
    for (std::size_t i = 0; i < before.size(); ++i)
      EXPECT_NEAR(after[i], before[i], 1e-8 * cfg.re_tau);
    EXPECT_NEAR(dns.bulk_velocity(), ub0, 1e-8 * cfg.re_tau);
    EXPECT_NEAR(dns.wall_shear_stress(), 1.0, 1e-8);
    EXPECT_LT(dns.max_divergence(), 1e-10);
  });
}

TEST(Dns, MeanStokesDecayMatchesAnalyticRate) {
  // With no forcing and no fluctuations, U(y, t) = e^{-nu (pi/2)^2 t}
  // cos(pi y / 2) exactly; checks the IMEX viscous integrator and the RK3
  // coefficient sums.
  run_world(1, [&](communicator& world) {
    auto cfg = small_config();
    cfg.forcing = 0.0;
    cfg.re_tau = 1.0;  // nu = 1
    cfg.dt = 5e-4;
    channel_dns dns(cfg, world);
    dns.initialize(0.0);
    const auto& ops = dns.operators();
    const double pi = std::numbers::pi;
    std::vector<double> u0(static_cast<std::size_t>(ops.n()));
    for (std::size_t i = 0; i < u0.size(); ++i)
      u0[i] = std::cos(0.5 * pi * ops.points()[i]);
    dns.set_mean_profile(u0);
    const int steps = 100;
    for (int s = 0; s < steps; ++s) dns.step();
    const double t = steps * cfg.dt;
    const double decay = std::exp(-0.25 * pi * pi * t);
    const auto prof = dns.mean_profile();
    for (std::size_t i = 0; i < prof.size(); ++i)
      EXPECT_NEAR(prof[i], decay * u0[i], 1e-6);
  });
}

TEST(Dns, PerturbedFieldStaysDivergenceFree) {
  run_world(1, [&](communicator& world) {
    auto cfg = small_config();
    channel_dns dns(cfg, world);
    dns.initialize(0.05);
    for (int s = 0; s < 3; ++s) dns.step();
    EXPECT_LT(dns.max_divergence(), 1e-8);
  });
}

TEST(Dns, FluctuationsDecayInOverdampedRegime) {
  // At very low Reynolds number with no forcing, all energy must decay.
  run_world(1, [&](communicator& world) {
    auto cfg = small_config();
    cfg.forcing = 0.0;
    cfg.re_tau = 1.0;
    cfg.dt = 1e-3;
    channel_dns dns(cfg, world);
    dns.initialize(0.5);
    double prev = dns.kinetic_energy();
    EXPECT_GT(prev, 0.0);
    for (int s = 0; s < 5; ++s) {
      dns.step();
      const double e = dns.kinetic_energy();
      EXPECT_LT(e, prev);
      prev = e;
    }
  });
}

TEST(Dns, HermitianSymmetryOfKxZeroPlanePreserved) {
  run_world(1, [&](communicator& world) {
    auto cfg = small_config();
    channel_dns dns(cfg, world);
    dns.initialize(0.05);
    for (int s = 0; s < 3; ++s) dns.step();
    for (std::size_t jz = 1; jz < cfg.nz / 2; ++jz) {
      auto a = dns.mode_v(0, jz);
      auto b = dns.mode_v(0, cfg.nz - jz);
      ASSERT_FALSE(a.empty());
      ASSERT_FALSE(b.empty());
      for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_LT(std::abs(a[i] - std::conj(b[i])), 1e-10);
    }
  });
}

TEST(Dns, TurbulentStepRunsStablyAtRe180) {
  run_world(1, [&](communicator& world) {
    auto cfg = small_config();
    cfg.dt = 5e-5;
    channel_dns dns(cfg, world);
    dns.initialize(0.2);
    const double e0 = dns.kinetic_energy();
    for (int s = 0; s < 4; ++s) dns.step();
    const double e1 = dns.kinetic_energy();
    EXPECT_TRUE(std::isfinite(e1));
    EXPECT_GT(e1, 0.0);
    EXPECT_LT(e1, 50.0 * e0);  // no blow-up
    EXPECT_TRUE(std::isfinite(dns.cfl()));
    EXPECT_LT(dns.max_divergence(), 1e-7);
  });
}

TEST(Dns, ResultsIndependentOfDecomposition) {
  auto cfg = small_config();
  cfg.dt = 1e-4;
  struct result {
    double bulk, ke, shear;
    std::vector<double> prof;
  };
  auto run_case = [&](int pa, int pb) {
    result r;
    std::mutex m;
    cfg.pa = pa;
    cfg.pb = pb;
    run_world(pa * pb, [&](communicator& world) {
      channel_dns dns(cfg, world);
      dns.initialize(0.1, 7);
      for (int s = 0; s < 2; ++s) dns.step();
      const double bulk = dns.bulk_velocity();
      const double ke = dns.kinetic_energy();
      const double shear = dns.wall_shear_stress();
      auto prof = dns.mean_profile();
      if (world.rank() == 0) {
        std::lock_guard<std::mutex> lk(m);
        r = {bulk, ke, shear, prof};
      }
    });
    return r;
  };
  const auto serial = run_case(1, 1);
  for (auto [pa, pb] : {std::pair{2, 2}, std::pair{1, 4}, std::pair{4, 1}}) {
    const auto par = run_case(pa, pb);
    EXPECT_NEAR(par.bulk, serial.bulk, 1e-9 * std::abs(serial.bulk))
        << pa << "x" << pb;
    EXPECT_NEAR(par.ke, serial.ke, 1e-8 * serial.ke) << pa << "x" << pb;
    EXPECT_NEAR(par.shear, serial.shear, 1e-9) << pa << "x" << pb;
    for (std::size_t i = 0; i < serial.prof.size(); ++i)
      EXPECT_NEAR(par.prof[i], serial.prof[i], 1e-9 * cfg.re_tau);
  }
}

TEST(Dns, ThreadedAdvanceMatchesSerial) {
  auto cfg = small_config();
  std::vector<double> serial, threaded;
  for (int threads : {1, 3}) {
    cfg.advance_threads = threads;
    cfg.fft_threads = threads;
    run_world(1, [&](communicator& world) {
      channel_dns dns(cfg, world);
      dns.initialize(0.1, 3);
      for (int s = 0; s < 2; ++s) dns.step();
      auto prof = dns.mean_profile();
      auto& out = threads == 1 ? serial : threaded;
      out = prof;
    });
  }
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i)
    EXPECT_NEAR(serial[i], threaded[i], 1e-12);
}

TEST(Dns, StatisticsProfilesAreSane) {
  run_world(1, [&](communicator& world) {
    auto cfg = small_config();
    channel_dns dns(cfg, world);
    dns.initialize(0.1);
    dns.step();
    dns.accumulate_stats();
    dns.step();
    dns.accumulate_stats();
    auto p = dns.stats();
    EXPECT_EQ(p.samples, 2);
    ASSERT_EQ(p.u.size(), static_cast<std::size_t>(cfg.ny));
    // No-slip: mean velocity vanishes at both walls.
    EXPECT_NEAR(p.u.front(), 0.0, 1e-8);
    EXPECT_NEAR(p.u.back(), 0.0, 1e-8);
    // Variances are nonnegative everywhere.
    for (std::size_t i = 0; i < p.u.size(); ++i) {
      EXPECT_GE(p.uu[i], -1e-12);
      EXPECT_GE(p.vv[i], -1e-12);
      EXPECT_GE(p.ww[i], -1e-12);
    }
    // Centerline mean close to laminar-ish magnitude (sanity band).
    EXPECT_GT(p.u[p.u.size() / 2], 1.0);
  });
}

TEST(Dns, TimingsBreakdownAccumulates) {
  run_world(1, [&](communicator& world) {
    auto cfg = small_config();
    channel_dns dns(cfg, world);
    dns.initialize(0.0);
    dns.step();
    auto t = dns.timings();
    EXPECT_GT(t.total, 0.0);
    EXPECT_GT(t.fft, 0.0);
    EXPECT_GT(t.advance, 0.0);
    dns.reset_timings();
    EXPECT_EQ(dns.timings().total, 0.0);
  });
}

}  // namespace
