// Energy-balance diagnostics and decomposition-independent checkpoints.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <mutex>

#include "core/simulation.hpp"

namespace {

using pcf::core::channel_config;
using pcf::core::channel_dns;
using pcf::vmpi::communicator;
using pcf::vmpi::run_world;

channel_config cfg_small() {
  channel_config cfg;
  cfg.nx = 8;
  cfg.nz = 8;
  cfg.ny = 28;
  cfg.dt = 1e-4;
  return cfg;
}

TEST(Dissipation, LaminarBalanceIsExact) {
  // Laminar Poiseuille: dissipation nu <(dU/dy)^2> equals the power input
  // F * U_bulk = Re/3 exactly (up to quadrature error).
  run_world(1, [&](communicator& world) {
    auto cfg = cfg_small();
    channel_dns dns(cfg, world);
    dns.initialize(0.0);
    const double eps = dns.dissipation();
    const double input = cfg.forcing * dns.bulk_velocity();
    EXPECT_NEAR(eps, input, 2e-2 * input);  // trapezoid-quadrature error
    EXPECT_NEAR(input, cfg.re_tau / 3.0, 1e-6);
  });
}

TEST(Dissipation, PositiveAndDecompositionIndependent) {
  auto cfg = cfg_small();
  double ref = 0.0;
  for (auto [pa, pb] : {std::pair{1, 1}, std::pair{2, 2}}) {
    cfg.pa = pa;
    cfg.pb = pb;
    double got = 0.0;
    std::mutex m;
    run_world(pa * pb, [&](communicator& world) {
      channel_dns dns(cfg, world);
      dns.initialize(0.2, 5);
      dns.step();
      const double e = dns.dissipation();
      if (world.rank() == 0) {
        std::lock_guard<std::mutex> lk(m);
        got = e;
      }
    });
    EXPECT_GT(got, 0.0);
    if (ref == 0.0)
      ref = got;
    else
      EXPECT_NEAR(got, ref, 1e-9 * ref);
  }
}

TEST(Dissipation, FluctuationsIncreaseDissipation) {
  run_world(1, [&](communicator& world) {
    auto cfg = cfg_small();
    channel_dns lam(cfg, world), turb(cfg, world);
    lam.initialize(0.0);
    turb.initialize(0.0);
    // Same mean in both, add fluctuations to one by re-initializing with
    // perturbations and copying the laminar mean back.
    turb.initialize(0.3, 7);
    turb.set_mean_profile(lam.mean_profile());
    EXPECT_GT(turb.dissipation(), lam.dissipation());
  });
}

TEST(GlobalCheckpoint, RestartOnDifferentDecomposition) {
  const std::string path = ::testing::TempDir() + "/pcf_gckpt.bin";
  auto cfg = cfg_small();
  // Run 2 + 1 steps on a 2x2 grid, saving after step 2.
  std::vector<double> direct;
  cfg.pa = 2;
  cfg.pb = 2;
  run_world(4, [&](communicator& world) {
    channel_dns dns(cfg, world);
    dns.initialize(0.1, 3);
    dns.step();
    dns.step();
    dns.save_checkpoint_global(path);
    dns.step();
    auto prof = dns.mean_profile();  // collective: every rank participates
    if (world.rank() == 0) direct = prof;
  });
  // Restart the saved state on a single rank and take the same third step.
  std::vector<double> resumed;
  cfg.pa = 1;
  cfg.pb = 1;
  run_world(1, [&](communicator& world) {
    channel_dns dns(cfg, world);
    dns.load_checkpoint_global(path);
    EXPECT_EQ(dns.step_count(), 2);
    dns.step();
    resumed = dns.mean_profile();
  });
  ASSERT_EQ(direct.size(), resumed.size());
  for (std::size_t i = 0; i < direct.size(); ++i)
    EXPECT_NEAR(direct[i], resumed[i], 1e-10);
  std::remove(path.c_str());
}

TEST(GlobalCheckpoint, RoundTripPreservesEnergyAndTime) {
  const std::string path = ::testing::TempDir() + "/pcf_gckpt2.bin";
  auto cfg = cfg_small();
  double e_before = 0.0, t_before = 0.0;
  run_world(1, [&](communicator& world) {
    channel_dns dns(cfg, world);
    dns.initialize(0.2, 9);
    dns.step();
    e_before = dns.kinetic_energy();
    t_before = dns.time();
    dns.save_checkpoint_global(path);
  });
  cfg.pa = 2;
  run_world(2, [&](communicator& world) {
    channel_dns dns(cfg, world);
    dns.load_checkpoint_global(path);
    EXPECT_DOUBLE_EQ(dns.time(), t_before);
    EXPECT_NEAR(dns.kinetic_energy(), e_before, 1e-10 * e_before);
  });
  cfg.pa = 1;
  std::remove(path.c_str());
}

TEST(ParallelCheckpoint, SingleFileRestartAcrossDecompositions) {
  const std::string path = ::testing::TempDir() + "/pcf_pckpt.bin";
  auto cfg = cfg_small();
  std::vector<double> direct;
  cfg.pa = 2;
  cfg.pb = 2;
  run_world(4, [&](communicator& world) {
    channel_dns dns(cfg, world);
    dns.initialize(0.1, 13);
    dns.step();
    dns.save_checkpoint_parallel(path);
    dns.step();
    auto prof = dns.mean_profile();  // collective: every rank participates
    if (world.rank() == 0) direct = prof;
  });
  std::vector<double> resumed;
  cfg.pa = 1;
  cfg.pb = 2;
  run_world(2, [&](communicator& world) {
    channel_dns dns(cfg, world);
    dns.load_checkpoint_parallel(path);
    EXPECT_EQ(dns.step_count(), 1);
    dns.step();
    resumed = dns.mean_profile();
  });
  ASSERT_EQ(direct.size(), resumed.size());
  for (std::size_t i = 0; i < direct.size(); ++i)
    EXPECT_NEAR(direct[i], resumed[i], 1e-10);
  std::remove(path.c_str());
}

TEST(ParallelCheckpoint, AgreesWithGatheredCheckpoint) {
  // Both formats carry the same state: loading either must reproduce the
  // same kinetic energy.
  const std::string p1 = ::testing::TempDir() + "/pcf_pckpt_a.bin";
  const std::string p2 = ::testing::TempDir() + "/pcf_pckpt_b.bin";
  auto cfg = cfg_small();
  double e_ref = 0.0;
  run_world(1, [&](communicator& world) {
    channel_dns dns(cfg, world);
    dns.initialize(0.25, 21);
    dns.step();
    e_ref = dns.kinetic_energy();
    dns.save_checkpoint_parallel(p1);
    dns.save_checkpoint_global(p2);
  });
  for (const auto& p : {p1, p2}) {
    run_world(1, [&](communicator& world) {
      channel_dns dns(cfg, world);
      if (p == p1)
        dns.load_checkpoint_parallel(p);
      else
        dns.load_checkpoint_global(p);
      EXPECT_NEAR(dns.kinetic_energy(), e_ref, 1e-12 * e_ref);
    });
  }
  std::remove(p1.c_str());
  std::remove(p2.c_str());
}

TEST(ParallelCheckpoint, RejectsWrongMagic) {
  const std::string path = ::testing::TempDir() + "/pcf_pckpt_bad.bin";
  auto cfg = cfg_small();
  run_world(1, [&](communicator& world) {
    channel_dns dns(cfg, world);
    dns.initialize(0.0);
    dns.save_checkpoint_global(path);  // wrong format on purpose
  });
  EXPECT_THROW(run_world(1,
                         [&](communicator& world) {
                           channel_dns dns(cfg, world);
                           dns.load_checkpoint_parallel(path);
                         }),
               pcf::precondition_error);
  std::remove(path.c_str());
}

TEST(GlobalCheckpoint, RejectsWrongResolution) {
  const std::string path = ::testing::TempDir() + "/pcf_gckpt3.bin";
  auto cfg = cfg_small();
  run_world(1, [&](communicator& world) {
    channel_dns dns(cfg, world);
    dns.initialize(0.0);
    dns.save_checkpoint_global(path);
  });
  cfg.nz = 16;
  EXPECT_THROW(run_world(1,
                         [&](communicator& world) {
                           channel_dns dns(cfg, world);
                           dns.load_checkpoint_global(path);
                         }),
               pcf::precondition_error);
  std::remove(path.c_str());
}

}  // namespace
