// The scenario family layered on the classical channel: plane Couette
// walls (exact laminar linear profile), constant-flow-rate forcing (bulk
// velocity held exactly by linearity of the mean Helmholtz solve), and
// passive scalars (exact conduction steady state, analytic diffusive
// decay). Plus the config validation boundary and scenario-state
// checkpoint round trips in all three formats.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <functional>
#include <limits>
#include <numbers>
#include <string>
#include <vector>

#include "core/simulation.hpp"
#include "util/check.hpp"

namespace {

using pcf::core::channel_config;
using pcf::core::channel_dns;
using pcf::core::forcing_mode;
using pcf::core::scalar_spec;
using pcf::precondition_error;
using pcf::vmpi::communicator;
using pcf::vmpi::run_world;

channel_config small_config() {
  channel_config cfg;
  cfg.nx = 8;
  cfg.nz = 8;
  cfg.ny = 24;
  cfg.re_tau = 180.0;
  cfg.dt = 1e-4;
  return cfg;
}

std::string scratch(const std::string& tag) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  return ::testing::TempDir() + "/pcf_scen_" +
         std::string(info->test_suite_name()) + "_" + info->name() + "_" + tag;
}

}  // namespace

TEST(Scenarios, LaminarCouetteIsExactSteadyState) {
  // Plane Couette with no pressure gradient: U(y) = U_lo (1-y)/2 +
  // U_hi (1+y)/2 solves nu U'' = 0 with the moving-wall BCs, so the
  // initialized profile must not move.
  run_world(1, [&](communicator& world) {
    auto cfg = small_config();
    cfg.forcing = 0.0;
    cfg.scenario.wall_u_lo = -1.0;
    cfg.scenario.wall_u_hi = 1.0;
    channel_dns dns(cfg, world);
    dns.initialize(0.0);
    const auto& pts = dns.operators().points();
    auto expect_linear = [&](double tol) {
      const auto prof = dns.mean_profile();
      for (std::size_t i = 0; i < prof.size(); ++i) {
        const double y = pts[i];
        const double exact = -0.5 * (1.0 - y) + 0.5 * (1.0 + y);
        EXPECT_NEAR(prof[i], exact, tol) << "y = " << y;
      }
    };
    expect_linear(1e-10);
    EXPECT_NEAR(dns.bulk_velocity(), 0.0, 1e-10);
    for (int s = 0; s < 20; ++s) dns.step();
    expect_linear(1e-8);
    // tau_w = nu dU/dy = (U_hi - U_lo) / (2 re_tau) at the lower wall.
    EXPECT_NEAR(dns.wall_shear_stress(), 1.0 / cfg.re_tau, 1e-9);
    EXPECT_LT(dns.max_divergence(), 1e-10);
  });
}

TEST(Scenarios, CouettePoiseuilleSuperpositionIsSteady) {
  // The mean equation is linear: Couette (homogeneous, wall-driven) plus
  // Poiseuille (forced, no-slip relative) superpose to another exact
  // steady state.
  run_world(1, [&](communicator& world) {
    auto cfg = small_config();
    cfg.scenario.wall_u_lo = -2.0;
    cfg.scenario.wall_u_hi = 3.0;
    channel_dns dns(cfg, world);
    dns.initialize(0.0);
    const auto before = dns.mean_profile();
    const double ub0 = dns.bulk_velocity();
    // Bulk = Poiseuille bulk + Couette bulk = re_tau/3 + (lo + hi)/2.
    EXPECT_NEAR(ub0, cfg.re_tau / 3.0 + 0.5, 1e-8);
    for (int s = 0; s < 5; ++s) dns.step();
    const auto after = dns.mean_profile();
    for (std::size_t i = 0; i < before.size(); ++i)
      EXPECT_NEAR(after[i], before[i], 1e-8 * cfg.re_tau);
    EXPECT_NEAR(dns.bulk_velocity(), ub0, 1e-8 * cfg.re_tau);
  });
}

TEST(Scenarios, SpanwiseWallMotionRunsStably) {
  // Spanwise wall motion (W walls) rides the same mean machinery; a
  // perturbed run must stay finite and divergence-free.
  run_world(1, [&](communicator& world) {
    auto cfg = small_config();
    cfg.scenario.wall_w_lo = -0.5;
    cfg.scenario.wall_w_hi = 0.5;
    channel_dns dns(cfg, world);
    dns.initialize(0.05);
    for (int s = 0; s < 3; ++s) dns.step();
    EXPECT_TRUE(std::isfinite(dns.kinetic_energy()));
    EXPECT_LT(dns.max_divergence(), 1e-8);
  });
}

TEST(Scenarios, LaminarScalarConductionIsExactSteadyState) {
  // With zero fluctuations the scalar equation reduces to pure wall-normal
  // conduction; the linear profile between the wall values is its exact
  // steady state, and the wall flux is kappa (hi - lo) / 2.
  run_world(1, [&](communicator& world) {
    auto cfg = small_config();
    cfg.scenario.scalars.push_back(scalar_spec{0.71, 0.0, 1.0});
    channel_dns dns(cfg, world);
    dns.initialize(0.0);
    ASSERT_EQ(dns.num_scalars(), 1u);
    const auto& pts = dns.operators().points();
    auto expect_linear = [&](double tol) {
      const auto prof = dns.scalar_profile(0);
      for (std::size_t i = 0; i < prof.size(); ++i)
        EXPECT_NEAR(prof[i], 0.5 * (1.0 + pts[i]), tol) << "y = " << pts[i];
    };
    expect_linear(1e-10);
    for (int s = 0; s < 20; ++s) dns.step();
    expect_linear(1e-8);
    const double kappa = 1.0 / (cfg.re_tau * 0.71);
    EXPECT_NEAR(dns.scalar_wall_flux(0), kappa * 0.5, 1e-9);
  });
}

TEST(Scenarios, ScalarStokesDecayMatchesAnalyticRate) {
  // theta(y, t) = e^{-kappa (pi/2)^2 t} cos(pi y / 2) exactly when the
  // velocity carries no wall-normal motion. Two Prandtl numbers check that
  // each scalar advances with its own diffusivity (the grouped implicit
  // solves must not mix kappas).
  run_world(1, [&](communicator& world) {
    auto cfg = small_config();
    cfg.forcing = 0.0;
    cfg.re_tau = 1.0;  // nu = 1
    cfg.dt = 5e-4;
    cfg.scenario.scalars.push_back(scalar_spec{1.0, 0.0, 0.0});  // kappa 1
    cfg.scenario.scalars.push_back(scalar_spec{4.0, 0.0, 0.0});  // kappa 1/4
    channel_dns dns(cfg, world);
    dns.initialize(0.0);
    const auto& ops = dns.operators();
    const double pi = std::numbers::pi;
    std::vector<double> th0(static_cast<std::size_t>(ops.n()));
    for (std::size_t i = 0; i < th0.size(); ++i)
      th0[i] = std::cos(0.5 * pi * ops.points()[i]);
    dns.set_scalar_profile(0, th0);
    dns.set_scalar_profile(1, th0);
    const int steps = 100;
    for (int s = 0; s < steps; ++s) dns.step();
    const double t = steps * cfg.dt;
    for (std::size_t sc = 0; sc < 2; ++sc) {
      const double kappa = 1.0 / cfg.scenario.scalars[sc].prandtl;
      const double decay = std::exp(-0.25 * pi * pi * kappa * t);
      const auto prof = dns.scalar_profile(sc);
      for (std::size_t i = 0; i < prof.size(); ++i)
        EXPECT_NEAR(prof[i], decay * th0[i], 1e-6)
            << "scalar " << sc << " at y = " << ops.points()[i];
    }
  });
}

TEST(Scenarios, ConstantFlowRateHoldsBulkVelocity) {
  // The quickstart grid under flow-rate forcing: the auto-captured target
  // is the initial bulk, and every later step holds it to roundoff — the
  // substep constraint is exact by linearity, not a controller.
  run_world(1, [&](communicator& world) {
    channel_config cfg;
    cfg.nx = 16;
    cfg.nz = 16;
    cfg.ny = 33;
    cfg.re_tau = 180.0;
    cfg.dt = 1e-4;
    cfg.scenario.forcing = forcing_mode::flow_rate;
    channel_dns dns(cfg, world);
    dns.initialize(0.1, 1);
    const double ub0 = dns.bulk_velocity();
    EXPECT_DOUBLE_EQ(dns.flow_rate_target(), 0.0) << "target not yet captured";
    for (int s = 0; s < 25; ++s) {
      dns.step();
      EXPECT_NEAR(dns.bulk_velocity(), ub0, 1e-12 * std::abs(ub0))
          << "step " << s + 1;
    }
    // The capture reads the same integrate(c_U)/2 the observable does, so
    // the resolved target equals the pre-step bulk bit-for-bit.
    EXPECT_DOUBLE_EQ(dns.flow_rate_target(), ub0);
    EXPECT_TRUE(std::isfinite(dns.current_forcing()));
  });
}

TEST(Scenarios, ExplicitFlowRateTargetIsReachedImmediately) {
  run_world(1, [&](communicator& world) {
    auto cfg = small_config();
    cfg.scenario.forcing = forcing_mode::flow_rate;
    cfg.scenario.target_bulk = 50.0;  // below the laminar re_tau/3 = 60
    channel_dns dns(cfg, world);
    dns.initialize(0.0);
    EXPECT_DOUBLE_EQ(dns.flow_rate_target(), 50.0);
    dns.step();
    // The constraint is enforced per substep, so one step suffices.
    EXPECT_NEAR(dns.bulk_velocity(), 50.0, 1e-10);
    // Decelerating toward a lower bulk needs a negative (adverse) forcing.
    EXPECT_LT(dns.current_forcing(), 0.0);
  });
}

TEST(Scenarios, ValidateRejectsBadConfigsNamingTheKey) {
  struct bad_case {
    const char* needle;
    void (*mutate)(channel_config&);
  };
  const bad_case cases[] = {
      {"nx", [](channel_config& c) { c.nx = 6; }},
      {"nz", [](channel_config& c) { c.nz = 7; }},
      {"degree", [](channel_config& c) { c.degree = 0; }},
      {"ny", [](channel_config& c) { c.ny = 10; }},  // < 2*7 + 1
      {"stretch", [](channel_config& c) { c.stretch = -1.0; }},
      {"lx", [](channel_config& c) { c.lx = 0.0; }},
      {"lz", [](channel_config& c) { c.lz = -2.0; }},
      {"re_tau", [](channel_config& c) { c.re_tau = 0.0; }},
      {"dt", [](channel_config& c) { c.dt = 0.0; }},
      {"forcing", [](channel_config& c) { c.forcing = std::nan(""); }},
      {"max_batch", [](channel_config& c) { c.max_batch = 0; }},
      {"pipeline_depth", [](channel_config& c) { c.pipeline_depth = 0; }},
      {"fft_threads", [](channel_config& c) { c.fft_threads = 0; }},
      {"reorder_threads", [](channel_config& c) { c.reorder_threads = -1; }},
      {"advance_threads", [](channel_config& c) { c.advance_threads = 0; }},
      {"replica_c", [](channel_config& c) { c.replica_c = -1; }},
      {"wall_u_lo",
       [](channel_config& c) { c.scenario.wall_u_lo = std::nan(""); }},
      {"wall_w_hi",
       [](channel_config& c) {
         c.scenario.wall_w_hi = std::numeric_limits<double>::infinity();
       }},
      {"target_bulk",
       [](channel_config& c) { c.scenario.target_bulk = std::nan(""); }},
      {"scalars",
       [](channel_config& c) { c.scenario.scalars.resize(9); }},
      {"prandtl",
       [](channel_config& c) {
         c.scenario.scalars.push_back(scalar_spec{0.0, 0.0, 0.0});
       }},
      {"wall_lo",
       [](channel_config& c) {
         c.scenario.scalars.push_back(scalar_spec{1.0, std::nan(""), 0.0});
       }},
  };
  for (const auto& bc : cases) {
    channel_config cfg = small_config();
    bc.mutate(cfg);
    try {
      cfg.validate();
      FAIL() << "expected validate() to reject the '" << bc.needle
             << "' mutation";
    } catch (const precondition_error& ex) {
      EXPECT_NE(std::string(ex.what()).find(bc.needle), std::string::npos)
          << ex.what();
    }
  }
}

TEST(Scenarios, ConstructorValidatesBeforeBuildingAnything) {
  // The channel_dns constructor runs validate() first, so a bad config
  // fails with the named key instead of deep in the spline layer.
  run_world(1, [&](communicator& world) {
    auto cfg = small_config();
    cfg.ny = 10;  // < 2 * degree + 1
    try {
      channel_dns dns(cfg, world);
      FAIL() << "expected the constructor to reject ny = 10";
    } catch (const precondition_error& ex) {
      EXPECT_NE(std::string(ex.what()).find("ny"), std::string::npos)
          << ex.what();
    }
  });
}

namespace {

/// Save `a` with the given saver, load into a freshly initialized `b`,
/// and require bit-identical observables — then one more step on both to
/// prove the restored run continues exactly (RK3 carries no nonlinear
/// history across step boundaries).
using checkpoint_fn =
    std::function<void(channel_dns&, const std::string&)>;

void roundtrip_and_compare(const channel_config& cfg, const std::string& tag,
                           const checkpoint_fn& save,
                           const checkpoint_fn& load) {
  const std::string path = scratch(tag);
  run_world(1, [&](communicator& world) {
    channel_dns a(cfg, world);
    a.initialize(0.1, 2);
    for (int s = 0; s < 3; ++s) a.step();
    save(a, path);

    channel_dns b(cfg, world);
    b.initialize(0.0);
    load(b, path);
    EXPECT_EQ(b.step_count(), a.step_count());
    EXPECT_DOUBLE_EQ(b.time(), a.time());
    EXPECT_DOUBLE_EQ(b.flow_rate_target(), a.flow_rate_target());
    EXPECT_DOUBLE_EQ(b.current_forcing(), a.current_forcing());

    auto expect_identical = [&](channel_dns& x, channel_dns& y) {
      EXPECT_DOUBLE_EQ(y.bulk_velocity(), x.bulk_velocity());
      const auto mx = x.mean_profile(), my = y.mean_profile();
      ASSERT_EQ(my.size(), mx.size());
      for (std::size_t i = 0; i < mx.size(); ++i)
        EXPECT_DOUBLE_EQ(my[i], mx[i]) << "mean[" << i << "]";
      for (std::size_t sc = 0; sc < x.num_scalars(); ++sc) {
        const auto tx = x.scalar_profile(sc), ty = y.scalar_profile(sc);
        ASSERT_EQ(ty.size(), tx.size());
        for (std::size_t i = 0; i < tx.size(); ++i)
          EXPECT_DOUBLE_EQ(ty[i], tx[i]) << "scalar " << sc << "[" << i << "]";
        const auto vx = x.mode_scalar(sc, 1, 1), vy = y.mode_scalar(sc, 1, 1);
        ASSERT_EQ(vy.size(), vx.size());
        for (std::size_t i = 0; i < vx.size(); ++i) {
          EXPECT_DOUBLE_EQ(vy[i].real(), vx[i].real());
          EXPECT_DOUBLE_EQ(vy[i].imag(), vx[i].imag());
        }
      }
    };
    expect_identical(a, b);
    a.step();
    b.step();
    expect_identical(a, b);
  });
  std::remove(path.c_str());
}

channel_config scenario_checkpoint_config() {
  channel_config cfg;
  cfg.nx = 8;
  cfg.nz = 8;
  cfg.ny = 24;
  cfg.re_tau = 180.0;
  cfg.dt = 1e-4;
  cfg.scenario.wall_u_lo = -0.5;
  cfg.scenario.wall_u_hi = 0.5;
  cfg.scenario.forcing = forcing_mode::flow_rate;
  cfg.scenario.scalars.push_back(scalar_spec{0.71, 0.0, 1.0});
  cfg.scenario.scalars.push_back(scalar_spec{7.0, -1.0, 1.0});
  return cfg;
}

}  // namespace

TEST(Scenarios, PerRankCheckpointRoundTripsScenarioState) {
  roundtrip_and_compare(
      scenario_checkpoint_config(), "rank",
      [](channel_dns& d, const std::string& p) { d.save_checkpoint(p); },
      [](channel_dns& d, const std::string& p) { d.load_checkpoint(p); });
}

TEST(Scenarios, GlobalCheckpointRoundTripsScenarioState) {
  roundtrip_and_compare(
      scenario_checkpoint_config(), "global",
      [](channel_dns& d, const std::string& p) { d.save_checkpoint_global(p); },
      [](channel_dns& d, const std::string& p) {
        d.load_checkpoint_global(p);
      });
}

TEST(Scenarios, ParallelCheckpointRoundTripsScenarioState) {
  roundtrip_and_compare(
      scenario_checkpoint_config(), "parallel",
      [](channel_dns& d, const std::string& p) {
        d.save_checkpoint_parallel(p);
      },
      [](channel_dns& d, const std::string& p) {
        d.load_checkpoint_parallel(p);
      });
}
