// Per-stage unit tests of the RK3 pipeline: each stage driven against a
// hand-built stage_context on a small grid, the whole-pipeline bit-identity
// check against the golden checkpoint hash, and the zero-heap-allocation
// guarantee of the hot loop (counting global operator new).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <new>
#include <vector>

#include "core/stages/diagnostics_stage.hpp"
#include "core/stages/implicit_stage.hpp"
#include "core/stages/mean_flow_stage.hpp"
#include "core/stages/nonlinear_stage.hpp"
#include "core/stages/stage_context.hpp"
#include "util/crc.hpp"

// ---------------------------------------------------------------------------
// Counting allocator: replaces the global operator new for this binary so a
// test can assert that a code region performs no heap allocation. Counting
// is off by default; deallocation is never counted.
namespace {

std::atomic<long> g_alloc_count{0};
std::atomic<bool> g_count_allocs{false};

void* counted_alloc(std::size_t bytes, std::size_t align) {
  if (g_count_allocs.load(std::memory_order_relaxed))
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p;
  if (align > alignof(std::max_align_t)) {
    const std::size_t rounded = (bytes + align - 1) / align * align;
    p = std::aligned_alloc(align, rounded);
  } else {
    p = std::malloc(bytes ? bytes : 1);
  }
  if (!p) throw std::bad_alloc{};
  return p;
}

struct alloc_guard {
  alloc_guard() {
    g_alloc_count.store(0);
    g_count_allocs.store(true);
  }
  ~alloc_guard() { g_count_allocs.store(false); }
  [[nodiscard]] long count() const { return g_alloc_count.load(); }
};

}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n, 0); }
void* operator new[](std::size_t n) { return counted_alloc(n, 0); }
void* operator new(std::size_t n, std::align_val_t a) {
  return counted_alloc(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return counted_alloc(n, static_cast<std::size_t>(a));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

// ---------------------------------------------------------------------------

namespace {

using pcf::core::channel_config;
using pcf::core::channel_dns;
using pcf::core::cplx;
using pcf::core::diagnostics_stage;
using pcf::core::field_state;
using pcf::core::field_workspace;
using pcf::core::implicit_stage;
using pcf::core::mean_flow_stage;
using pcf::core::mode_tables;
using pcf::core::nonlinear_stage;
using pcf::core::stage_context;
using pcf::core::wall_normal_operators;
using pcf::vmpi::communicator;
using pcf::vmpi::run_world;

channel_config small_config() {
  channel_config cfg;
  cfg.nx = 8;
  cfg.nz = 8;
  cfg.ny = 24;
  cfg.re_tau = 180.0;
  cfg.dt = 1e-4;
  return cfg;
}

/// Mirrors channel_dns::impl's wiring so each stage can be driven in
/// isolation against hand-built fields.
struct stage_harness {
  channel_config cfg;
  communicator& world;
  pcf::vmpi::cart2d cart;
  pcf::pencil::decomp d;
  field_workspace ws;
  pcf::pencil::parallel_fft pf;
  wall_normal_operators ops;
  pcf::thread_pool pool;
  mode_tables modes;
  field_state state;
  pcf::phase_timer timers;
  pcf::phase_timer::id ph_step;
  stage_context ctx;
  nonlinear_stage nonlinear;
  implicit_stage implicit;
  mean_flow_stage mean_flow;
  diagnostics_stage diagnostics;

  stage_harness(const channel_config& c, communicator& w)
      : cfg(c),
        world(w),
        cart(w, c.pa, c.pb),
        d(pcf::pencil::grid{c.nx, static_cast<std::size_t>(c.ny), c.nz},
          dns_kernel_config(c), cart.pa(), cart.pb(), cart.coord_a(),
          cart.coord_b()),
        ws(dns_workspace_sizes(c, d)),
        pf(pcf::pencil::grid{c.nx, static_cast<std::size_t>(c.ny), c.nz},
           cart, dns_kernel_config(c), ws.transform()),
        ops(c.ny, c.degree, c.stretch),
        pool(std::max(1, c.advance_threads)),
        modes(make_mode_tables(c, d)),
        state(modes, d.x_pencil_real_elems(), ws),
        timers(world.size() == 1),
        ph_step(timers.add("step")),
        ctx{cfg,   d,     ops, pf, pool,  world,
            modes, state, ws,  timers},
        nonlinear(ctx, ph_step),
        implicit(ctx, ph_step),
        mean_flow(ctx, ph_step),
        diagnostics(ctx, ph_step) {
    state.zero();
  }
};

TEST(Stages, ModeTablesMarkMeanAndNyquist) {
  run_world(1, [&](communicator& world) {
    auto cfg = small_config();
    stage_harness h(cfg, world);
    const auto& mt = h.modes;
    ASSERT_GT(mt.nmodes, 0u);
    EXPECT_EQ(mt.n, static_cast<std::size_t>(cfg.ny));
    EXPECT_TRUE(mt.has_mean);  // single rank owns every mode

    const double az = 2.0 * std::acos(-1.0) / cfg.lz;
    const double kz_nyq = -az * static_cast<double>(cfg.nz / 2);
    std::size_t mean_count = 0;
    for (std::size_t m = 0; m < mt.nmodes; ++m) {
      const bool is_mean = mt.kx[m] == 0.0 && mt.kz[m] == 0.0;
      const bool is_nyquist = mt.kz[m] == kz_nyq;
      if (is_mean) {
        ++mean_count;
        EXPECT_EQ(m, mt.mean_idx);
      }
      // skip marks exactly the mean mode and the spanwise Nyquist modes.
      EXPECT_EQ(mt.skip[m] != 0, is_mean || is_nyquist) << "mode " << m;
      // k2s == 0 does double duty marking skipped modes for the solver
      // arena; live modes carry the exact kx^2 + kz^2.
      if (mt.skip[m]) {
        EXPECT_EQ(mt.k2s[m], 0.0) << "mode " << m;
      } else {
        EXPECT_EQ(mt.k2s[m], mt.kx[m] * mt.kx[m] + mt.kz[m] * mt.kz[m])
            << "mode " << m;
      }
    }
    EXPECT_EQ(mean_count, 1u);
  });
}

TEST(Stages, ProductsHandCheckAndCfl) {
  run_world(1, [&](communicator& world) {
    auto cfg = small_config();
    stage_harness h(cfg, world);
    auto& st = h.state;
    const std::size_t ps = h.d.x_pencil_real_elems();
    // u = 2, v = -3, w = 4 everywhere: the five KMM products and the CFL
    // estimate have closed forms.
    for (std::size_t i = 0; i < ps; ++i) {
      st.u_p[i] = 2.0;
      st.v_p[i] = -3.0;
      st.w_p[i] = 4.0;
    }
    h.nonlinear.compute_products();
    for (std::size_t i = 0; i < ps; ++i) {
      EXPECT_EQ(st.f1[i], -5.0);   // u^2 - v^2 = 4 - 9
      EXPECT_EQ(st.f2[i], -6.0);   // u v
      EXPECT_EQ(st.f3[i], 8.0);    // u w
      EXPECT_EQ(st.f4[i], -12.0);  // v w
      EXPECT_EQ(st.f5[i], 7.0);    // w^2 - v^2 = 16 - 9
    }
    const double dx = cfg.lx / static_cast<double>(h.d.nxf);
    const double dz = cfg.lz / static_cast<double>(h.d.nzf);
    const auto& pts = h.ops.points();
    double dy_min = 2.0;
    for (std::size_t i = 1; i < pts.size(); ++i)
      dy_min = std::min(dy_min, pts[i] - pts[i - 1]);
    EXPECT_DOUBLE_EQ(st.cfl_local,
                     cfg.dt * (2.0 / dx + 3.0 / dy_min + 4.0 / dz));
  });
}

// Deterministic pseudo-field for seeding the spectral state.
cplx seed_value(std::size_t m, std::size_t j, int which) {
  const double a = 0.1 * static_cast<double>(m) +
                   0.37 * static_cast<double>(j) + 1.7 * which;
  return cplx{std::sin(a), std::cos(1.3 * a)};
}

void seed_implicit_inputs(stage_harness& h) {
  auto& st = h.state;
  const std::size_t n = h.modes.n;
  for (std::size_t m = 0; m < h.modes.nmodes; ++m) {
    for (std::size_t j = 0; j < n; ++j) {
      st.line(st.c_om, m)[j] = seed_value(m, j, 0);
      st.line(st.c_phi, m)[j] = seed_value(m, j, 1);
      st.line(st.u_s, m)[j] = seed_value(m, j, 2);   // h_v
      st.line(st.v_s, m)[j] = seed_value(m, j, 3);   // h_g
      st.line(st.hv_prev, m)[j] = seed_value(m, j, 4);
      st.line(st.hg_prev, m)[j] = seed_value(m, j, 5);
    }
  }
}

TEST(Stages, ImplicitCachedMatchesUncached) {
  run_world(1, [&](communicator& world) {
    auto cfg = small_config();
    stage_harness cached(cfg, world);
    auto cfg2 = cfg;
    cfg2.cache_solvers = false;
    stage_harness uncached(cfg2, world);
    seed_implicit_inputs(cached);
    seed_implicit_inputs(uncached);
    for (int i = 0; i < 3; ++i) {
      cached.implicit.run(i);
      uncached.implicit.run(i);
    }
    const auto& a = cached.state;
    const auto& b = uncached.state;
    const std::size_t n = cached.modes.n;
    for (std::size_t m = 0; m < cached.modes.nmodes; ++m) {
      for (std::size_t j = 0; j < n; ++j) {
        EXPECT_NEAR(std::abs(a.line(a.c_om, m)[j] - b.line(b.c_om, m)[j]),
                    0.0, 1e-10);
        EXPECT_NEAR(std::abs(a.line(a.c_phi, m)[j] - b.line(b.c_phi, m)[j]),
                    0.0, 1e-10);
        EXPECT_NEAR(std::abs(a.line(a.c_v, m)[j] - b.line(b.c_v, m)[j]),
                    0.0, 1e-10);
      }
      // Spanwise Nyquist modes are held at exactly zero.
      if (cached.modes.skip[m] && m != cached.modes.mean_idx) {
        for (std::size_t j = 0; j < n; ++j) {
          EXPECT_EQ(a.line(a.c_om, m)[j], (cplx{0, 0}));
          EXPECT_EQ(a.line(a.c_phi, m)[j], (cplx{0, 0}));
          EXPECT_EQ(a.line(a.c_v, m)[j], (cplx{0, 0}));
        }
      }
    }
  });
}

TEST(Stages, MeanFlowMatchesDirectSolve) {
  run_world(1, [&](communicator& world) {
    auto cfg = small_config();
    stage_harness h(cfg, world);
    auto& st = h.state;
    const std::size_t n = h.modes.n;
    ASSERT_TRUE(h.modes.has_mean);
    for (std::size_t j = 0; j < n; ++j) {
      st.c_U[j] = std::sin(0.3 * static_cast<double>(j));
      st.c_W[j] = std::cos(0.2 * static_cast<double>(j));
      st.hU[j] = 0.1 * static_cast<double>(j);
      st.hW[j] = -0.05 * static_cast<double>(j);
      st.hU_prev[j] = 0.02 * static_cast<double>(j);
      st.hW_prev[j] = 0.01 * static_cast<double>(j);
    }
    const std::vector<double> c_U0 = st.c_U;
    const std::vector<double> hU0(st.hU, st.hU + n);
    const std::vector<double> hU_prev0 = st.hU_prev;

    const int i = 1;  // substep with a nonzero zeta weight
    h.mean_flow.run(i);

    // Direct reference: [A0 - cb A2] c = [A0 + ca A2] c0 + dt-weighted
    // forcing, Dirichlet rows zeroed, solved with an independently built
    // factored Helmholtz operator.
    const double nu = 1.0 / cfg.re_tau;
    const double ca = pcf::core::rk3::kAlpha[i] * cfg.dt * nu;
    const double cb = pcf::core::rk3::kBeta[i] * cfg.dt * nu;
    const double g = pcf::core::rk3::kGamma[i] * cfg.dt;
    const double z = pcf::core::rk3::kZeta[i] * cfg.dt;
    std::vector<double> rhs(n), t(n);
    h.ops.A0().apply(c_U0.data(), rhs.data());
    h.ops.A2().apply(c_U0.data(), t.data());
    for (std::size_t j = 0; j < n; ++j)
      rhs[j] += ca * t[j] + g * (hU0[j] + cfg.forcing) +
                z * (hU_prev0[j] + cfg.forcing);
    rhs[0] = 0.0;
    rhs[n - 1] = 0.0;
    auto M = h.ops.helmholtz(cb, 0.0);
    M.factorize();
    M.solve(rhs.data());
    for (std::size_t j = 0; j < n; ++j)
      EXPECT_DOUBLE_EQ(st.c_U[j], rhs[j]) << "coefficient " << j;
    // The stage saved the forcing as the new history.
    for (std::size_t j = 0; j < n; ++j)
      EXPECT_EQ(st.hU_prev[j], hU0[j]);
  });
}

TEST(Stages, DtControllerProportionalWithClamp) {
  run_world(1, [&](communicator& world) {
    auto cfg = small_config();
    stage_harness h(cfg, world);
    auto& st = h.state;

    // Disabled target: never requests a change.
    st.cfl_local = 2.0;
    EXPECT_EQ(h.diagnostics.finish_step(), 0.0);
    EXPECT_EQ(st.cfl_global, 2.0);  // the reduction still ran

    // Proportional step toward the target CFL, half-damped.
    h.diagnostics.set_cfl_target(0.5, 1e-6, 1e-2);
    st.cfl_local = 2.0;
    const double want = cfg.dt * 0.5 / 2.0;
    EXPECT_DOUBLE_EQ(h.diagnostics.finish_step(),
                     cfg.dt + 0.5 * (want - cfg.dt));

    // Tiny CFL: the raw proposal explodes and clamps to dt_max.
    st.cfl_local = 1e-12;
    EXPECT_EQ(h.diagnostics.finish_step(), 1e-2);

    // Already at the target: dt is unchanged and no change is requested.
    st.cfl_local = 0.5;
    EXPECT_EQ(h.diagnostics.finish_step(), 0.0);
  });
}

TEST(Stages, PipelineReproducesGoldenCheckpointHash) {
  // The staged pipeline must advance bit-identically to the pre-stage
  // monolith. The golden values were produced by the PR 3 code on the
  // quickstart configuration; the checkpoint CRC covers every bit of the
  // evolved state.
  run_world(1, [&](communicator& world) {
    channel_config cfg;
    cfg.nx = 16;
    cfg.nz = 16;
    cfg.ny = 33;
    cfg.re_tau = 180.0;
    cfg.dt = 1e-4;
    channel_dns dns(cfg, world);
    dns.initialize(0.1, 1);
    for (int s = 0; s < 25; ++s) dns.step();
    EXPECT_DOUBLE_EQ(dns.kinetic_energy(), 157.45739483957092);
    EXPECT_DOUBLE_EQ(dns.bulk_velocity(), 15.519657316103206);

    const std::string path = "stages_golden.ckpt";
    dns.save_checkpoint(path);
    std::ifstream is(path, std::ios::binary);
    ASSERT_TRUE(is.good());
    std::vector<char> buf((std::istreambuf_iterator<char>(is)),
                          std::istreambuf_iterator<char>());
    EXPECT_EQ(buf.size(), 203472u);
    EXPECT_EQ(pcf::crc32(buf.data(), buf.size()), 0x3fa23d27u);
    std::remove(path.c_str());
  });
}

void expect_zero_alloc_steps(const channel_config& cfg) {
  run_world(1, [&](communicator& world) {
    channel_dns dns(cfg, world);
    dns.initialize(0.1, 1);
    // Warm-up: builds the per-substep solver arenas and first-touches
    // every workspace lane and counter bucket.
    for (int s = 0; s < 2; ++s) dns.step();
    long allocs = 0;
    {
      alloc_guard guard;
      for (int s = 0; s < 3; ++s) dns.step();
      allocs = guard.count();
    }
    EXPECT_EQ(allocs, 0) << "RK3 hot loop touched the heap";
  });
}

TEST(Stages, StepHotLoopDoesNotAllocate) {
  channel_config cfg;
  cfg.nx = 16;
  cfg.nz = 16;
  cfg.ny = 33;
  cfg.re_tau = 180.0;
  cfg.dt = 1e-4;
  expect_zero_alloc_steps(cfg);
}

TEST(Stages, StepHotLoopDoesNotAllocateThreaded) {
  channel_config cfg;
  cfg.nx = 16;
  cfg.nz = 16;
  cfg.ny = 33;
  cfg.re_tau = 180.0;
  cfg.dt = 1e-4;
  cfg.advance_threads = 2;
  cfg.fft_threads = 2;
  expect_zero_alloc_steps(cfg);
}

TEST(Stages, StepHotLoopDoesNotAllocatePooled) {
  // Pool-backed lanes: leasing happens at construction (and on resume),
  // never inside the hot loop — stepping must stay heap-silent exactly
  // like the owned regime.
  channel_config cfg;
  cfg.nx = 16;
  cfg.nz = 16;
  cfg.ny = 33;
  cfg.re_tau = 180.0;
  cfg.dt = 1e-4;
  cfg.pooled_workspace = true;
  expect_zero_alloc_steps(cfg);
}

TEST(Stages, StepAfterResumeDoesNotAllocate) {
  // A suspend/resume cycle re-leases and rebinds, but once resumed the
  // hot loop must be as allocation-free as a never-suspended run. The
  // first post-resume step rebuilds the solver arenas, so warm up with
  // one step after the cycle before counting.
  channel_config cfg;
  cfg.nx = 16;
  cfg.nz = 16;
  cfg.ny = 33;
  cfg.re_tau = 180.0;
  cfg.dt = 1e-4;
  cfg.pooled_workspace = true;
  run_world(1, [&](communicator& world) {
    channel_dns dns(cfg, world);
    dns.initialize(0.1, 1);
    for (int s = 0; s < 2; ++s) dns.step();
    dns.suspend();
    EXPECT_TRUE(dns.suspended());
    dns.resume();
    EXPECT_FALSE(dns.suspended());
    dns.step();  // rebuilds the factored solver arenas
    long allocs = 0;
    {
      alloc_guard guard;
      for (int s = 0; s < 3; ++s) dns.step();
      allocs = guard.count();
    }
    EXPECT_EQ(allocs, 0) << "post-resume hot loop touched the heap";
  });
}

TEST(Stages, SuspendResumeCyclesReproduceGoldenCheckpointHash) {
  // The acceptance gate of the pooled-arena work: quickstart physics must
  // be bit-identical through suspend -> release -> re-lease -> resume
  // cycles, pinned by the same golden checkpoint CRC as the straight-line
  // run. Suspends are injected at several step boundaries, including
  // back-to-back cycles and an implicit resume via step().
  run_world(1, [&](communicator& world) {
    channel_config cfg;
    cfg.nx = 16;
    cfg.nz = 16;
    cfg.ny = 33;
    cfg.re_tau = 180.0;
    cfg.dt = 1e-4;
    cfg.pooled_workspace = true;
    channel_dns dns(cfg, world);
    dns.initialize(0.1, 1);
    for (int s = 0; s < 25; ++s) {
      if (s == 5 || s == 13) {
        dns.suspend();
        dns.resume();
      }
      if (s == 17) {
        dns.suspend();
        dns.suspend();  // idempotent
        // no explicit resume: step() resumes implicitly
      }
      dns.step();
    }
    EXPECT_DOUBLE_EQ(dns.kinetic_energy(), 157.45739483957092);
    EXPECT_DOUBLE_EQ(dns.bulk_velocity(), 15.519657316103206);

    const std::string path = "stages_golden_pooled.ckpt";
    dns.save_checkpoint(path);
    std::ifstream is(path, std::ios::binary);
    ASSERT_TRUE(is.good());
    std::vector<char> buf((std::istreambuf_iterator<char>(is)),
                          std::istreambuf_iterator<char>());
    EXPECT_EQ(buf.size(), 203472u);
    EXPECT_EQ(pcf::crc32(buf.data(), buf.size()), 0x3fa23d27u);
    std::remove(path.c_str());
  });
}

TEST(Stages, ObservablesResumeASuspendedSimulation) {
  // Diagnostics on a suspended instance must implicitly resume (they need
  // workspace scratch and the transform lane), not crash or misread.
  run_world(1, [&](communicator& world) {
    channel_config cfg;
    cfg.nx = 16;
    cfg.nz = 16;
    cfg.ny = 33;
    cfg.re_tau = 180.0;
    cfg.dt = 1e-4;
    cfg.pooled_workspace = true;
    channel_dns dns(cfg, world);
    dns.initialize(0.1, 1);
    for (int s = 0; s < 3; ++s) dns.step();
    const double ke = dns.kinetic_energy();
    const double div = dns.max_divergence();
    dns.suspend();
    ASSERT_TRUE(dns.suspended());
    EXPECT_DOUBLE_EQ(dns.kinetic_energy(), ke);  // implicit resume
    EXPECT_FALSE(dns.suspended());
    dns.suspend();
    EXPECT_DOUBLE_EQ(dns.max_divergence(), div);
  });
}

}  // namespace
